//! Dynamic update-stream benchmarks: the incremental engine against the
//! recompute-from-scratch baseline on every dynamic workload family.
//!
//! `report -- dynamic` writes the results as `BENCH_dynamic.json`. Each
//! row replays one family's update sequence through the facade and
//! records the engine's own telemetry: `updates_per_sec` (replay
//! throughput), total and per-op recourse (matching edges changed), and
//! the final matching weight. The baseline replays a *prefix* of the
//! same sequence — recomputing the whole matching after every update is
//! exactly the cost the engine's locality avoids, and the honest way to
//! show it is to record the baseline's own (smaller) op count alongside
//! its throughput rather than extrapolate.
//!
//! Before timing, the suite asserts the engine's cross-thread
//! determinism contract on each workload (threads 1 vs 4, with rebuild
//! epochs enabled): a throughput number for a nondeterministic result
//! would be meaningless.

use std::time::Instant;

use wmatch_api::{solve, Instance, SolveRequest};

use crate::families::DynamicFamily;

/// One measured row of `BENCH_dynamic.json`.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Workload family (`sliding-window`, `heavy-churn`, `delete-matching`).
    pub family: &'static str,
    /// Solver configuration (`dynamic-wgtaug`, `dynamic-wgtaug+rebuild`,
    /// `dynamic-rebuild`).
    pub solver: String,
    /// Vertex count.
    pub n: usize,
    /// Updates replayed by this row.
    pub ops: usize,
    /// Replay throughput in updates per second.
    pub updates_per_sec: f64,
    /// Total matching edges changed across the replay.
    pub recourse_total: u64,
    /// `recourse_total / ops`.
    pub recourse_per_op: f64,
    /// Final matching weight.
    pub final_weight: i128,
}

/// Replays `inst` under `req` through the facade and extracts the row.
fn measure(
    family: &'static str,
    solver: &'static str,
    label: String,
    inst: &Instance,
    req: &SolveRequest,
    n: usize,
    ops: usize,
) -> DynamicRow {
    let report = solve(solver, inst, req).expect("dynamic replay");
    row_from_report(family, label, &report, n, ops)
}

/// Extracts a row from an already-obtained report (so a replay done for
/// a determinism assertion can double as a measurement).
fn row_from_report(
    family: &'static str,
    label: String,
    report: &wmatch_api::SolveReport,
    n: usize,
    ops: usize,
) -> DynamicRow {
    let ups: f64 = report
        .telemetry
        .extra("updates_per_sec")
        .expect("dynamic telemetry")
        .parse()
        .unwrap_or(f64::INFINITY);
    let recourse: u64 = report
        .telemetry
        .extra("recourse_total")
        .expect("dynamic telemetry")
        .parse()
        .expect("numeric extra");
    DynamicRow {
        family,
        solver: label,
        n,
        ops,
        updates_per_sec: ups,
        recourse_total: recourse,
        recourse_per_op: recourse as f64 / ops.max(1) as f64,
        final_weight: report.value,
    }
}

/// Runs the whole suite: every dynamic family × {incremental engine,
/// engine with rebuild epochs, recompute baseline (on a prefix)}.
pub fn run_suite(quick: bool) -> Vec<DynamicRow> {
    let (n, ops, baseline_ops) = if quick {
        (64usize, 1_500usize, 400usize)
    } else {
        (256, 20_000, 3_000)
    };
    let mut rows = Vec::new();
    for family in DynamicFamily::all() {
        let w = family.build(n, ops, 11);
        let full = Instance::dynamic(w.initial.clone(), w.ops.clone());
        let prefix = Instance::dynamic(
            w.initial.clone(),
            w.ops[..baseline_ops.min(w.ops.len())].to_vec(),
        );
        let req = SolveRequest::new().with_seed(5);
        let rebuild_req = req.clone().with_rebuild_threshold(ops / 8);

        // determinism first: the maintained matching must be bit-identical
        // across thread counts (rebuild epochs are the only parallel
        // layer). The threads=1 run is exactly the rebuild configuration,
        // so its report doubles as the "+rebuild" measured row below.
        let a = solve("dynamic-wgtaug", &full, &rebuild_req).expect("threads=1 replay");
        let b = solve(
            "dynamic-wgtaug",
            &full,
            &rebuild_req.clone().with_threads(4),
        )
        .expect("threads=4 replay");
        assert_eq!(
            a.matching.to_edges(),
            b.matching.to_edges(),
            "{}: dynamic-wgtaug diverged across thread counts",
            family.name()
        );

        rows.push(measure(
            family.name(),
            "dynamic-wgtaug",
            "dynamic-wgtaug".into(),
            &full,
            &req,
            n,
            w.ops.len(),
        ));
        rows.push(row_from_report(
            family.name(),
            "dynamic-wgtaug+rebuild".into(),
            &a,
            n,
            w.ops.len(),
        ));
        rows.push(measure(
            family.name(),
            "dynamic-rebuild",
            "dynamic-rebuild".into(),
            &prefix,
            &req,
            n,
            baseline_ops.min(w.ops.len()),
        ));
    }
    rows
}

/// Serializes the rows as `BENCH_dynamic.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(rows: &[DynamicRow], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"hardware_threads\": {},\n  \"unit\": \"updates_per_sec\",\n  \"determinism\": \"dynamic-wgtaug asserted bit-identical across threads 1 and 4 (rebuild epochs enabled)\",\n  \"note\": \"dynamic-rebuild recomputes from scratch per update and is measured on a prefix of the same sequence; compare updates_per_sec, not totals\",\n  \"benches\": [\n",
        if quick { "quick" } else { "full" },
        crate::serve::hardware_threads(),
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"solver\": \"{}\", \"n\": {}, \"ops\": {}, \
             \"updates_per_sec\": {:.1}, \"recourse_total\": {}, \"recourse_per_op\": {:.3}, \
             \"final_weight\": {}}}{}\n",
            r.family,
            r.solver,
            r.n,
            r.ops,
            r.updates_per_sec,
            r.recourse_total,
            r.recourse_per_op,
            r.final_weight,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the suite, writes `BENCH_dynamic.json` next to the working
/// directory (override with `WMATCH_BENCH_DIR`), and renders the
/// markdown section.
pub fn run(quick: bool) -> String {
    let t0 = Instant::now();
    let rows = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_dynamic.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write BENCH_dynamic.json");

    let mut out = String::from("## Dynamic — update-stream engine vs recompute-from-scratch\n\n");
    out.push_str(&format!(
        "written: `{}` (dynamic-wgtaug asserted bit-identical across threads 1/4 before \
         timing; the recompute baseline replays a prefix — compare updates/s)\n\n",
        path.display()
    ));
    out.push_str("| family | solver | n | ops | updates/s | recourse/op | final weight |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.0} | {:.3} | {} |\n",
            r.family, r.solver, r.n, r.ops, r.updates_per_sec, r.recourse_per_op, r.final_weight
        ));
    }
    out.push_str(&format!(
        "\nShape: the incremental engine's recourse stays a small constant per update while \
         its throughput sits well above the per-update recompute baseline (whose gap widens \
         with n — it pays the whole live graph per update); rebuild epochs buy periodic \
         class-sweep quality at a throughput cost. (suite ran in {:.1}s)\n",
        t0.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable() {
        let rows = vec![DynamicRow {
            family: "sliding-window",
            solver: "dynamic-wgtaug".into(),
            n: 16,
            ops: 10,
            updates_per_sec: 123.4,
            recourse_total: 7,
            recourse_per_op: 0.7,
            final_weight: 42,
        }];
        let j = to_json(&rows, true);
        assert!(j.contains("\"updates_per_sec\": 123.4"));
        assert!(j.contains("\"family\": \"sliding-window\""));
        assert!(j.contains("\"hardware_threads\":"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn tiny_suite_runs_end_to_end() {
        // miniature pass over the measurement plumbing (not the sizes)
        let w = DynamicFamily::SlidingWindow.build(16, 60, 3);
        let inst = Instance::dynamic(w.initial, w.ops.clone());
        let row = measure(
            "sliding-window",
            "dynamic-wgtaug",
            "dynamic-wgtaug".into(),
            &inst,
            &SolveRequest::new(),
            16,
            w.ops.len(),
        );
        assert_eq!(row.ops, w.ops.len());
        assert!(row.updates_per_sec > 0.0);
    }
}
