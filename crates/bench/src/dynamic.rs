//! The dynamic-matching shootout: every dynamic solver in the registry —
//! the incremental engine (with and without rebuild epochs), the
//! recompute-from-scratch baseline, and the competitor solvers
//! (`dynamic-randomwalk`, `dynamic-lazy`, `dynamic-stale`) — replayed
//! over every dynamic workload family (the E11 trio plus the marketplace
//! stream and the E13 adversarial families).
//!
//! `report -- dynamic` writes the results as `BENCH_dynamic.json`. Each
//! row replays one (family, solver) pair through the facade with
//! certification enabled and records: `updates_per_sec` (replay
//! throughput, measured before the oracle runs), total and per-op
//! recourse (matching edges changed), the final matching weight, and
//! `oracle_ratio` — the certified quality of the final matching against
//! a from-scratch exact solve, alongside the solver's declared floor.
//! The baseline replays a *prefix* of the same sequence — recomputing
//! the whole matching after every update is exactly the cost the other
//! engines avoid, and the honest way to show it is to record the
//! baseline's own (smaller) op count alongside its throughput rather
//! than extrapolate.
//!
//! Before timing, the suite asserts the engine's cross-thread
//! determinism contract on each workload (threads 1 vs 4, with rebuild
//! epochs enabled): a throughput number for a nondeterministic result
//! would be meaningless.
//!
//! With `WMATCH_SHOOTOUT_GUARD=1` in the environment (set in CI), the
//! run additionally fails if any family is missing a solver row or any
//! row's certified ratio dips below that solver's declared floor.

use std::time::Instant;

use wmatch_api::{solve, solver, Instance, SolveRequest};

use crate::families::{self, AdversarialFamily, DynamicFamily, DynamicWorkload};

/// The solver labels every family must produce, in row order. The
/// `+rebuild` row is `dynamic-wgtaug` with rebuild epochs enabled.
const EXPECTED_LABELS: [&str; 6] = [
    "dynamic-wgtaug",
    "dynamic-wgtaug+rebuild",
    "dynamic-rebuild",
    "dynamic-randomwalk",
    "dynamic-lazy",
    "dynamic-stale",
];

/// One measured row of `BENCH_dynamic.json`.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Workload family (`sliding-window`, `heavy-churn`,
    /// `delete-matching`, `marketplace`, or an adversarial family).
    pub family: &'static str,
    /// Solver configuration (one of the six `EXPECTED_LABELS` rows).
    pub solver: String,
    /// Vertex count.
    pub n: usize,
    /// Updates replayed by this row.
    pub ops: usize,
    /// Replay throughput in updates per second.
    pub updates_per_sec: f64,
    /// Total matching edges changed across the replay.
    pub recourse_total: u64,
    /// `recourse_total / ops`.
    pub recourse_per_op: f64,
    /// Final matching weight.
    pub final_weight: i128,
    /// Certified quality of the final matching against the exact oracle.
    pub oracle_ratio: f64,
    /// The solver's declared approximation floor.
    pub floor: f64,
}

/// Replays `inst` under `req` (certification forced on) through the
/// facade and extracts the row.
fn measure(
    family: &'static str,
    solver_name: &'static str,
    label: String,
    inst: &Instance,
    req: &SolveRequest,
    n: usize,
    ops: usize,
) -> DynamicRow {
    let report = solve(solver_name, inst, &req.clone().with_certify(true)).expect("dynamic replay");
    row_from_report(family, solver_name, label, &report, n, ops)
}

/// Extracts a row from an already-obtained certified report (so a replay
/// done for a determinism assertion can double as a measurement).
fn row_from_report(
    family: &'static str,
    solver_name: &'static str,
    label: String,
    report: &wmatch_api::SolveReport,
    n: usize,
    ops: usize,
) -> DynamicRow {
    let ups: f64 = report
        .telemetry
        .extra("updates_per_sec")
        .expect("dynamic telemetry")
        .parse()
        .unwrap_or(f64::INFINITY);
    let recourse: u64 = report
        .telemetry
        .extra("recourse_total")
        .expect("dynamic telemetry")
        .parse()
        .expect("numeric extra");
    let cert = report
        .certificate
        .as_ref()
        .expect("shootout rows are certified");
    let floor = solver(solver_name)
        .expect("registered solver")
        .capabilities()
        .approx_floor;
    DynamicRow {
        family,
        solver: label,
        n,
        ops,
        updates_per_sec: ups,
        recourse_total: recourse,
        recourse_per_op: recourse as f64 / ops.max(1) as f64,
        final_weight: report.value,
        oracle_ratio: cert.ratio,
        floor,
    }
}

/// Every workload family the shootout replays: the E11 dynamic trio,
/// the marketplace stream, and the E13 adversarial families.
fn workloads(n: usize, ops: usize) -> Vec<(&'static str, DynamicWorkload)> {
    let mut out: Vec<(&'static str, DynamicWorkload)> = DynamicFamily::all()
        .into_iter()
        .map(|f| (f.name(), f.build(n, ops, 11)))
        .collect();
    out.push(("marketplace", families::marketplace(n, ops, 11)));
    out.extend(
        AdversarialFamily::all()
            .into_iter()
            .map(|f| (f.name(), f.build(n, ops, 11))),
    );
    out
}

/// Runs the whole shootout: every workload family × every solver row of
/// `EXPECTED_LABELS` (the recompute baseline on a prefix).
pub fn run_suite(quick: bool) -> Vec<DynamicRow> {
    let (n, ops, baseline_ops) = if quick {
        (64usize, 1_500usize, 400usize)
    } else {
        (256, 20_000, 3_000)
    };
    let mut rows = Vec::new();
    for (name, w) in workloads(n, ops) {
        let full = Instance::dynamic(w.initial.clone(), w.ops.clone());
        let prefix = Instance::dynamic(
            w.initial.clone(),
            w.ops[..baseline_ops.min(w.ops.len())].to_vec(),
        );
        let req = SolveRequest::new().with_seed(5);
        let rebuild_req = req.clone().with_rebuild_threshold(ops / 8);

        // determinism first: the maintained matching must be bit-identical
        // across thread counts (rebuild epochs are the only parallel
        // layer). The threads=1 run is exactly the rebuild configuration,
        // so its report doubles as the "+rebuild" measured row below.
        let a = solve(
            "dynamic-wgtaug",
            &full,
            &rebuild_req.clone().with_certify(true),
        )
        .expect("threads=1 replay");
        let b = solve(
            "dynamic-wgtaug",
            &full,
            &rebuild_req.clone().with_threads(4),
        )
        .expect("threads=4 replay");
        assert_eq!(
            a.matching.to_edges(),
            b.matching.to_edges(),
            "{name}: dynamic-wgtaug diverged across thread counts"
        );

        rows.push(measure(
            name,
            "dynamic-wgtaug",
            "dynamic-wgtaug".into(),
            &full,
            &req,
            n,
            w.ops.len(),
        ));
        rows.push(row_from_report(
            name,
            "dynamic-wgtaug",
            "dynamic-wgtaug+rebuild".into(),
            &a,
            n,
            w.ops.len(),
        ));
        rows.push(measure(
            name,
            "dynamic-rebuild",
            "dynamic-rebuild".into(),
            &prefix,
            &req,
            n,
            baseline_ops.min(w.ops.len()),
        ));
        rows.push(measure(
            name,
            "dynamic-randomwalk",
            "dynamic-randomwalk".into(),
            &full,
            &req,
            n,
            w.ops.len(),
        ));
        rows.push(measure(
            name,
            "dynamic-lazy",
            "dynamic-lazy".into(),
            &full,
            &req,
            n,
            w.ops.len(),
        ));
        rows.push(measure(
            name,
            "dynamic-stale",
            "dynamic-stale".into(),
            &full,
            &req,
            n,
            w.ops.len(),
        ));
    }
    rows
}

/// The CI regression guard (`WMATCH_SHOOTOUT_GUARD=1`): every family
/// must carry every expected solver row, and every row's certified
/// ratio must clear that solver's declared floor.
fn guard(rows: &[DynamicRow]) {
    let families: Vec<&'static str> = {
        let mut f: Vec<&'static str> = rows.iter().map(|r| r.family).collect();
        f.dedup();
        f
    };
    for family in families {
        for label in EXPECTED_LABELS {
            let row = rows
                .iter()
                .find(|r| r.family == family && r.solver == label)
                .unwrap_or_else(|| panic!("shootout guard: {family} is missing the {label} row"));
            assert!(
                row.oracle_ratio >= row.floor - 1e-9,
                "shootout guard: {family}/{label} certified {:.4}, below its declared floor {}",
                row.oracle_ratio,
                row.floor
            );
        }
    }
}

/// Serializes the rows as `BENCH_dynamic.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(rows: &[DynamicRow], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"hardware_threads\": {},\n  \"unit\": \"updates_per_sec\",\n  \"determinism\": \"dynamic-wgtaug asserted bit-identical across threads 1 and 4 (rebuild epochs enabled)\",\n  \"guard\": \"WMATCH_SHOOTOUT_GUARD=1 fails the run if any solver row is missing or certifies below its declared floor\",\n  \"note\": \"dynamic-rebuild recomputes from scratch per update and is measured on a prefix of the same sequence; compare updates_per_sec, not totals. oracle_ratio is certified on the final live graph by a from-scratch exact solve\",\n  \"benches\": [\n",
        if quick { "quick" } else { "full" },
        crate::serve::hardware_threads(),
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"solver\": \"{}\", \"n\": {}, \"ops\": {}, \
             \"updates_per_sec\": {:.1}, \"recourse_total\": {}, \"recourse_per_op\": {:.3}, \
             \"final_weight\": {}, \"oracle_ratio\": {:.4}, \"floor\": {}}}{}\n",
            r.family,
            r.solver,
            r.n,
            r.ops,
            r.updates_per_sec,
            r.recourse_total,
            r.recourse_per_op,
            r.final_weight,
            r.oracle_ratio,
            r.floor,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the shootout, writes `BENCH_dynamic.json` next to the working
/// directory (override with `WMATCH_BENCH_DIR`), applies the CI guard
/// when `WMATCH_SHOOTOUT_GUARD=1`, and renders the markdown section.
pub fn run(quick: bool) -> String {
    let t0 = Instant::now();
    let rows = run_suite(quick);
    if std::env::var("WMATCH_SHOOTOUT_GUARD").as_deref() == Ok("1") {
        guard(&rows);
    }
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_dynamic.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write BENCH_dynamic.json");

    let mut out = String::from("## Dynamic — the update-stream solver shootout\n\n");
    out.push_str(&format!(
        "written: `{}` (dynamic-wgtaug asserted bit-identical across threads 1/4 before \
         timing; the recompute baseline replays a prefix — compare updates/s; oracle ratio \
         certified on the final graph)\n\n",
        path.display()
    ));
    out.push_str(
        "| family | solver | n | ops | updates/s | recourse/op | final weight | vs oracle |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.0} | {:.3} | {} | {:.3} |\n",
            r.family,
            r.solver,
            r.n,
            r.ops,
            r.updates_per_sec,
            r.recourse_per_op,
            r.final_weight,
            r.oracle_ratio
        ));
    }
    out.push_str(&format!(
        "\nShape: every solver clears its declared floor with a wide margin; the separations \
         are in throughput and recourse. The eager engine pays a small constant recourse per \
         update; the random-walk competitor trades a little quality headroom for cheap \
         repairs; the lazy and stale engines shift repair cost out of the per-op path \
         entirely (lowest per-op latency, same post-flush floor); the per-update recompute \
         baseline anchors the cost of getting the guarantee the naive way. (suite ran in \
         {:.1}s)\n",
        t0.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> DynamicRow {
        DynamicRow {
            family: "sliding-window",
            solver: "dynamic-wgtaug".into(),
            n: 16,
            ops: 10,
            updates_per_sec: 123.4,
            recourse_total: 7,
            recourse_per_op: 0.7,
            final_weight: 42,
            oracle_ratio: 0.97,
            floor: 0.5,
        }
    }

    #[test]
    fn json_shape_is_parseable() {
        let rows = vec![sample_row()];
        let j = to_json(&rows, true);
        assert!(j.contains("\"updates_per_sec\": 123.4"));
        assert!(j.contains("\"family\": \"sliding-window\""));
        assert!(j.contains("\"oracle_ratio\": 0.9700"));
        assert!(j.contains("\"hardware_threads\":"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn tiny_suite_runs_end_to_end() {
        // miniature pass over the measurement plumbing (not the sizes)
        let w = DynamicFamily::SlidingWindow.build(16, 60, 3);
        let inst = Instance::dynamic(w.initial, w.ops.clone());
        let row = measure(
            "sliding-window",
            "dynamic-wgtaug",
            "dynamic-wgtaug".into(),
            &inst,
            &SolveRequest::new(),
            16,
            w.ops.len(),
        );
        assert_eq!(row.ops, w.ops.len());
        assert!(row.updates_per_sec > 0.0);
        assert!(row.oracle_ratio >= 0.5);
    }

    #[test]
    fn every_competitor_produces_a_certified_row() {
        let w = DynamicFamily::HeavyChurn.build(16, 80, 3);
        let inst = Instance::dynamic(w.initial, w.ops.clone());
        for name in ["dynamic-randomwalk", "dynamic-lazy", "dynamic-stale"] {
            let row = measure(
                "heavy-churn",
                name,
                name.into(),
                &inst,
                &SolveRequest::new(),
                16,
                w.ops.len(),
            );
            assert!(
                row.oracle_ratio >= row.floor - 1e-9,
                "{name}: {} below {}",
                row.oracle_ratio,
                row.floor
            );
        }
    }

    #[test]
    fn guard_rejects_missing_rows_and_floor_dips() {
        let ok = EXPECTED_LABELS
            .iter()
            .map(|l| DynamicRow {
                solver: (*l).into(),
                ..sample_row()
            })
            .collect::<Vec<_>>();
        guard(&ok); // complete and above floor: passes

        let missing = &ok[..EXPECTED_LABELS.len() - 1];
        assert!(
            std::panic::catch_unwind(|| guard(missing)).is_err(),
            "guard must reject a missing row"
        );

        let mut dipped = ok.clone();
        dipped[0].oracle_ratio = 0.3;
        assert!(
            std::panic::catch_unwind(move || guard(&dipped)).is_err(),
            "guard must reject a below-floor row"
        );
    }
}
