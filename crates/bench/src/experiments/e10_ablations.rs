//! E10 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **bucket-aware τ enumeration** (our pruning) vs blind enumeration
//!    over the full unit range — pair counts and sweep time,
//! 2. **parallel class sweep** (Algorithm 3's "in parallel", literal) vs
//!    sequential — wall-clock per round,
//! 3. **warm start** from greedy vs the paper's cold start from ∅,
//! 4. **bipartition trials** per round — quality as a function of how many
//!    random (L, R) draws each round samples.

use std::collections::BTreeSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::families::Family;
use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Effort, Instance, SolveRequest};
use wmatch_core::layered::Parametrization;
use wmatch_core::main_alg::{improve_matching_offline, MainAlgConfig};
use wmatch_core::single_class::achievable_buckets;
use wmatch_core::tau::enumerate_good_pairs;
use wmatch_graph::Matching;

/// Runs E10 and renders its section.
pub fn run(quick: bool) -> String {
    let n = if quick { 32 } else { 60 };
    let mut out = String::from("## E10 — Ablations\n\n");
    let g = Family::GnpUniform.build(n, 13);
    let opt = opt_weight(&g) as f64;

    // 1. bucket-aware vs blind enumeration
    {
        let cfg = MainAlgConfig::thorough(0.25, 1);
        let tau_cfg = cfg.tau_config();
        let mut rng = StdRng::seed_from_u64(2);
        let param = Parametrization::random(g.vertex_count(), &mut rng);
        let mut m = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = m.insert(*e);
        }
        let mut t = Table::new(&["enumeration", "pairs (summed over classes)", "time"]);
        for blind in [false, true] {
            let t0 = Instant::now();
            let mut pairs = 0usize;
            for w_class in cfg.grid(g.max_weight()) {
                let (ba, bb) = if blind {
                    let full: BTreeSet<u32> = (0..=tau_cfg.sum_b_cap).collect();
                    (full.clone(), full)
                } else {
                    achievable_buckets(g.edges(), &m, &param, w_class, &tau_cfg)
                };
                pairs += enumerate_good_pairs(&tau_cfg, &ba, &bb).len();
            }
            t.row(vec![
                if blind {
                    "blind (full unit range)".into()
                } else {
                    "bucket-aware (ours)".to_string()
                },
                pairs.to_string(),
                format!("{:.3}s", t0.elapsed().as_secs_f64()),
            ]);
        }
        out.push_str("### Bucket-aware τ enumeration\n\n");
        out.push_str(&t.to_markdown());
    }

    // 2. parallel class sweep (larger instance so per-class work is real)
    {
        let big = Family::GnpUniform.build(if quick { 48 } else { 140 }, 17);
        let mut t = Table::new(&["threads", "one round (q=16)", "same result"]);
        let mut base_cfg = MainAlgConfig::thorough(0.25, 3);
        base_cfg.max_rounds = 1;
        let mut gains = Vec::new();
        let mut times = Vec::new();
        for threads in [1usize, 0] {
            let mut cfg = base_cfg;
            cfg.threads = threads;
            let mut m = Matching::new(big.vertex_count());
            let mut rng = StdRng::seed_from_u64(4);
            let t0 = Instant::now();
            let stats = improve_matching_offline(&big, &mut m, &cfg, &mut rng);
            times.push(t0.elapsed());
            gains.push(stats.gain);
        }
        t.row(vec![
            "1 (sequential)".into(),
            format!("{:.3}s", times[0].as_secs_f64()),
            "—".into(),
        ]);
        t.row(vec![
            "auto (per core)".into(),
            format!("{:.3}s", times[1].as_secs_f64()),
            (gains[0] == gains[1]).to_string(),
        ]);
        out.push_str("\n### Parallel class sweep (Algorithm 3 line 3)\n\n");
        out.push_str(&t.to_markdown());
    }

    // 3. warm vs cold start
    {
        let mut t = Table::new(&["start", "final ratio", "rounds"]);
        let inst = Instance::offline(g.clone());
        let req = SolveRequest::new()
            .with_seed(5)
            .with_effort(Effort::Thorough);
        let cold = solve("main-alg-offline", &inst, &req).expect("cold start");
        let greedy = solve("greedy", &inst, &SolveRequest::new()).expect("greedy");
        let warm = solve(
            "main-alg-offline",
            &inst,
            &req.with_warm_start(greedy.matching.clone()),
        )
        .expect("warm start");
        t.row(vec![
            "∅ (the paper's)".into(),
            ratio(cold.value as f64 / opt),
            cold.telemetry.rounds.to_string(),
        ]);
        t.row(vec![
            "greedy (warm)".into(),
            ratio(warm.value as f64 / opt),
            warm.telemetry.rounds.to_string(),
        ]);
        out.push_str("\n### Warm start\n\n");
        out.push_str(&t.to_markdown());
    }

    // 4. bipartition trials per round
    {
        let mut t = Table::new(&["trials/round", "final ratio"]);
        for trials in [1usize, 4, 8, if quick { 12 } else { 16 }] {
            // `trials` is below the facade's abstraction: drive the
            // internal round primitive directly
            let cfg = MainAlgConfig::practical(0.25, 6).with_trials(trials);
            let mut m = Matching::new(g.vertex_count());
            let mut rng = StdRng::seed_from_u64(6);
            for _ in 0..8 {
                improve_matching_offline(&g, &mut m, &cfg, &mut rng);
            }
            t.row(vec![trials.to_string(), ratio(m.weight() as f64 / opt)]);
        }
        out.push_str("\n### Bipartition trials per round (survival sampling)\n\n");
        out.push_str(&t.to_markdown());
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("Ablations"));
        assert!(md.contains("bucket-aware (ours)"));
        // the parallel sweep must reproduce the sequential gain
        assert!(md.contains("true"));
    }
}
