//! E9 (Section 4.3, Lemma 4.12): structural checks on the layered-graph
//! reduction.
//!
//! * survival: a planted short augmentation appears in the layered graph
//!   of a random bipartition with probability ≥ 2^{−|C|} (we measure the
//!   empirical rate against that bound),
//! * translation: every translated walk decomposes into alternating
//!   components (Lemma 4.11) and the best component has positive gain.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{ratio, Table};
use wmatch_core::layered::Parametrization;
use wmatch_core::single_class::single_class_augmentations;
use wmatch_core::tau::TauConfig;
use wmatch_graph::exact::hopcroft_karp::max_bipartite_cardinality_matching_from;
use wmatch_graph::generators;
use wmatch_graph::{Graph, Matching, Scratch};

/// Runs E9 and renders its section.
pub fn run(quick: bool) -> String {
    let trials = if quick { 60 } else { 400 };
    let mut out = String::from("## E9 — Lemma 4.12: augmentations survive in layered graphs\n\n");
    let mut t = Table::new(&[
        "structure",
        "|C| vertices",
        "bound 2^-|C|",
        "measured survival",
        "gain when found",
    ]);

    // 3-augmentation: path (9, 10, 9)
    {
        let g = generators::path_graph(&[9, 10, 9]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        let cfg = TauConfig::practical(8, 3).with_max_pairs(10_000);
        let (rate, gain) = survival(&g, &m, 16, &cfg, trials, 21);
        t.row(vec![
            "3-aug path (9,10,9)".into(),
            "4".into(),
            ratio(1.0 / 16.0),
            ratio(rate),
            format!("{gain}"),
        ]);
    }

    // single-edge augmentation
    {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 12);
        let m = Matching::new(2);
        let cfg = TauConfig::practical(8, 2).with_max_pairs(1000);
        let (rate, gain) = survival(&g, &m, 16, &cfg, trials, 22);
        t.row(vec![
            "single edge".into(),
            "2".into(),
            ratio(0.25),
            ratio(rate),
            format!("{gain}"),
        ]);
    }

    // augmenting cycle via blow-up: 4-cycle (4,5,4,5)
    {
        let (g, m) = generators::four_cycle_eps(4);
        let cfg = TauConfig::practical(32, 7).with_max_pairs(100_000);
        let (rate, gain) = survival(&g, &m, 32, &cfg, trials, 23);
        t.row(vec![
            "4-cycle blow-up (4,5,4,5)".into(),
            "4".into(),
            ratio(1.0 / 16.0),
            ratio(rate),
            format!("{gain}"),
        ]);
    }

    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: measured survival meets or beats the 2^-|C| bound (both orientations of \
         a surviving bipartition are enumerated, roughly doubling it); recovered gains match \
         the planted augmentation exactly.\n",
    );
    out
}

/// Fraction of random bipartitions under which Algorithm 4 recovers a
/// positive-gain augmentation, plus the modal gain.
fn survival(
    g: &Graph,
    m: &Matching,
    w_class: u64,
    cfg: &TauConfig,
    trials: usize,
    seed: u64,
) -> (f64, i128) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = Scratch::new();
    let mut hits = 0usize;
    let mut gain_seen = 0i128;
    for _ in 0..trials {
        let param = Parametrization::random(g.vertex_count(), &mut rng);
        let mut solve = |lg: &Graph, side: &[bool], init: Matching| {
            max_bipartite_cardinality_matching_from(lg, side, init)
        };
        let out = single_class_augmentations(
            g.edges(),
            m,
            w_class,
            &param,
            cfg,
            &mut solve,
            &mut scratch,
        );
        if out.gain > 0 {
            hits += 1;
            gain_seen = out.gain;
        }
    }
    (hits as f64 / trials as f64, gain_seen)
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("blow-up"));
    }
}
