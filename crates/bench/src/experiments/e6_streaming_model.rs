//! E6 (Theorem 1.2.2): the multi-pass streaming driver — passes and memory
//! versus instance size — driven through the unified facade.
//!
//! Paper claim: (1−ε) weighted matching in O_ε(U_S) passes and
//! O_ε(n·polylog n) memory. Shape to verify: the model pass count is flat
//! in n (it depends only on the ε-configuration), and peak memory grows
//! ~linearly in n while m grows faster.

use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_graph::generators::{gnp, WeightModel};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E6 and renders its section.
pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[24, 48] } else { &[40, 80, 160] };
    let mut out = String::from("## E6 — Theorem 1.2.2: multi-pass streaming driver\n\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "ratio",
        "passes (model)",
        "passes (sequential)",
        "peak memory (edges)",
        "mem/n",
    ]);
    let mut rng = StdRng::seed_from_u64(6);
    for &n in sizes {
        let p = (10.0 / n as f64).min(0.5);
        let g = gnp(n, p, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
        let opt = opt_weight(&g) as f64;
        if opt == 0.0 {
            continue;
        }
        let req = SolveRequest::new()
            .with_seed(3)
            .with_round_budget(if quick { 6 } else { 10 })
            .with_pass_budget(6);
        let res = solve(
            "main-alg-streaming",
            &Instance::adversarial(g.clone()),
            &req,
        )
        .expect("streaming driver");
        let passes_sequential: usize = res
            .telemetry
            .extra("passes_sequential")
            .expect("streaming telemetry")
            .parse()
            .expect("numeric extra");
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            ratio(res.value as f64 / opt),
            res.telemetry.passes.to_string(),
            passes_sequential.to_string(),
            res.telemetry.peak_stored_edges.to_string(),
            format!("{:.2}", res.telemetry.peak_stored_edges as f64 / n as f64),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: model passes are governed by the ε-configuration (flat in n); \
         memory per vertex stays bounded while m grows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("passes (model)"));
    }
}
