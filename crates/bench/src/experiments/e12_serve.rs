//! E12 (service scale): the sharded dynamic engine replaying the
//! hotspot-skewed marketplace stream as a million-user matching service
//! — determinism and the Fact 1.3 floor asserted before any timing, then
//! throughput and batch-amortized ingest latency recorded to
//! `BENCH_serve.json`. Thin alias for [`crate::serve::run`] so the
//! experiment id and the suite name both reach the same code.

/// Runs E12 and renders its section (see [`crate::serve`]).
pub fn run(quick: bool) -> String {
    crate::serve::run(quick)
}
