//! E11 (Fact 1.3, dynamically): the update-stream engine holds its
//! declared ½ floor against the blossom oracle at every point of an
//! insert/delete sequence, with per-update recourse that stays a small
//! constant — while the recompute-from-scratch baseline pays the whole
//! matching per update for the same guarantee. Driven through the
//! unified facade; quality is certified on the *final* live graph by the
//! report's exact-oracle certificate. The competitor solvers
//! (`dynamic-randomwalk`, `dynamic-lazy`, `dynamic-stale`) ride the same
//! table — the full cross-family shootout lives in `report -- dynamic`.

use crate::families::DynamicFamily;
use crate::table::Table;
use wmatch_api::{solve, Instance, SolveRequest};

/// Runs E11 and renders its section.
pub fn run(quick: bool) -> String {
    let (n, ops) = if quick {
        (40usize, 600usize)
    } else {
        (64, 2_000)
    };
    let mut out =
        String::from("## E11 — Fact 1.3 under updates: dynamic engine vs recompute baseline\n\n");
    let mut t = Table::new(&[
        "family",
        "solver",
        "ops",
        "final weight",
        "vs oracle",
        "floor (0.5) held",
        "recourse/op",
        "updates/s",
    ]);
    for family in DynamicFamily::all() {
        let w = family.build(n, ops, 11);
        let inst = Instance::dynamic(w.initial.clone(), w.ops.clone());
        let configs: [(&str, &str, SolveRequest); 6] = [
            (
                "dynamic-wgtaug",
                "dynamic-wgtaug",
                SolveRequest::new().with_seed(5).with_certify(true),
            ),
            (
                "dynamic-wgtaug",
                "dynamic-wgtaug+rebuild",
                SolveRequest::new()
                    .with_seed(5)
                    .with_certify(true)
                    .with_rebuild_threshold(ops / 8),
            ),
            (
                "dynamic-rebuild",
                "dynamic-rebuild",
                SolveRequest::new().with_seed(5).with_certify(true),
            ),
            (
                "dynamic-randomwalk",
                "dynamic-randomwalk",
                SolveRequest::new().with_seed(5).with_certify(true),
            ),
            (
                "dynamic-lazy",
                "dynamic-lazy",
                SolveRequest::new().with_seed(5).with_certify(true),
            ),
            (
                "dynamic-stale",
                "dynamic-stale",
                SolveRequest::new().with_seed(5).with_certify(true),
            ),
        ];
        for (solver, label, req) in configs {
            let report = solve(solver, &inst, &req).expect("dynamic replay");
            let cert = report.certificate.as_ref().expect("certified request");
            let recourse: f64 = report
                .telemetry
                .extra("recourse_total")
                .expect("dynamic telemetry")
                .parse::<u64>()
                .expect("numeric extra") as f64
                / w.ops.len() as f64;
            let ups = report
                .telemetry
                .extra("updates_per_sec")
                .expect("dynamic telemetry")
                .to_string();
            t.row(vec![
                family.name().into(),
                label.into(),
                w.ops.len().to_string(),
                report.value.to_string(),
                format!("{:.3}", cert.ratio),
                if cert.ratio >= 0.5 - 1e-9 {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
                format!("{recourse:.3}"),
                ups,
            ]);
        }
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: both engines certify the same Fact 1.3 floor on the final graph (the \
         agreement suite additionally enforces it at checkpoints mid-stream), and in \
         practice both sit far above it (≈0.95+). The incremental engine pays a fraction \
         of a matching edge changed per update, the baseline whole-matching churn; rebuild \
         epochs cost throughput and only help when local repair has drifted below what the \
         class sweep can find — on these sizes the invariant alone already saturates it. \
         The competitors certify the same floor after their terminal flush: the random \
         walker via local dominance, the lazy and stale engines by settling their deferred \
         repairs before reporting.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_table() {
        let md = super::run(true);
        assert!(md.contains("sliding-window"));
        assert!(md.contains("dynamic-rebuild"));
        assert!(md.contains("dynamic-randomwalk"));
        assert!(md.contains("dynamic-lazy"));
        assert!(md.contains("dynamic-stale"));
        assert!(!md.contains("| NO |"), "floor violated:\n{md}");
    }
}
