//! E1 (Theorem 3.4): the 0.506-approximation for unweighted matching on
//! random-order streams, driven through the unified facade.
//!
//! Paper claim: single pass, random edge arrivals, expected ratio ≥ 0.506
//! (greedy guarantees only ½, and is exactly ½ on the barrier family under
//! middle-first orders). Shape to verify: the algorithm never trails
//! greedy, and clearly beats 0.506 on the ½-barrier family.

use crate::families::Family;
use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_graph::Graph;

/// Runs E1 and renders its section.
pub fn run(quick: bool) -> String {
    let seeds: u64 = if quick { 3 } else { 10 };
    let sizes: &[usize] = if quick { &[200] } else { &[400, 1600] };
    let mut out = String::from("## E1 — Theorem 3.4: 0.506-approx unweighted, random order\n\n");
    let mut t = Table::new(&[
        "family",
        "n",
        "m",
        "greedy",
        "this paper",
        "winner branches (S1/greedy/3aug)",
    ]);
    let req = SolveRequest::new();
    for family in [
        Family::BarrierPaths,
        Family::GnpUniform,
        Family::BipartiteUniform,
    ] {
        for &n in sizes {
            let g = family.build(n, 5).unweighted_copy();
            // unit weights: the blossom oracle's weight is the cardinality
            let opt = opt_weight(&g) as f64;
            if opt == 0.0 {
                continue;
            }
            let mut greedy_sum = 0.0;
            let mut alg_sum = 0.0;
            let mut branches = [0usize; 3];
            for seed in 0..seeds {
                let inst = Instance::random_order(g.clone(), seed);
                let gr = solve("greedy", &inst, &req).expect("greedy");
                greedy_sum += gr.matching.len() as f64 / opt;
                let res = solve("random-order-unweighted", &inst, &req).expect("Theorem 3.4");
                alg_sum += res.value as f64 / opt;
                branches[match res.telemetry.extra("winner").expect("winner telemetry") {
                    "free-free" => 0,
                    "continued-greedy" => 1,
                    "3-aug" => 2,
                    other => panic!("unknown winner branch {other:?}"),
                }] += 1;
            }
            t.row(vec![
                family.name().into(),
                g.vertex_count().to_string(),
                g.edge_count().to_string(),
                ratio(greedy_sum / seeds as f64),
                ratio(alg_sum / seeds as f64),
                format!("{}/{}/{}", branches[0], branches[1], branches[2]),
            ]);
        }
    }
    out.push_str(&t.to_markdown());

    // the adversarial middle-first barrier: greedy is pinned at exactly 1/2
    let mut t2 = Table::new(&["order", "greedy", "this paper"]);
    let k = if quick { 50 } else { 200 };
    let g = wmatch_graph::generators::disjoint_paths3(k);
    let mut order = Vec::new();
    for i in 0..k {
        order.push(g.edge(3 * i + 1));
    }
    for i in 0..k {
        order.push(g.edge(3 * i));
        order.push(g.edge(3 * i + 2));
    }
    let opt = (2 * k) as f64;
    // a graph whose insertion order IS the middle-first adversary
    let middle_first = Graph::from_edges(g.vertex_count(), order);
    let gr = solve("greedy", &Instance::adversarial(middle_first.clone()), &req)
        .expect("greedy")
        .matching
        .len() as f64
        / opt;
    let mut alg_sum = 0.0;
    let runs = if quick { 3 } else { 10 };
    for run in 0..runs {
        let inst = Instance::random_order(middle_first.clone(), run as u64 + 1);
        alg_sum += solve("random-order-unweighted", &inst, &req)
            .expect("Theorem 3.4")
            .value as f64
            / opt;
    }
    t2.row(vec![
        "middle-first (adversarial)".into(),
        ratio(gr),
        "—".into(),
    ]);
    t2.row(vec![
        "random".into(),
        "—".into(),
        ratio(alg_sum / runs as f64),
    ]);
    out.push_str(
        "\nGreedy pinned at ½ by the adversarial order vs this paper on random orders:\n\n",
    );
    out.push_str(&t2.to_markdown());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("E1"));
        assert!(md.contains("barrier-paths"));
    }
}
