//! E8 (Lemmas 3.3/3.15): random arrival keeps the local-ratio stack `S`
//! and the above-potential set `T` near-linear, while adversarial
//! (ascending-weight) orders blow them up.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_graph::generators::{complete, WeightModel};
use wmatch_stream::VecStream;

/// Runs E8 and renders its section.
pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[24, 48] } else { &[30, 60, 90] };
    let mut out =
        String::from("## E8 — Lemmas 3.3/3.15: memory under random vs adversarial order\n\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "order",
        "|S| (stack)",
        "|T|",
        "(|S|+|T|)/m",
        "(|S|+|T|)/(n·log₂n)",
    ]);
    let mut rng = StdRng::seed_from_u64(8);
    for &n in sizes {
        // geometric weights give local-ratio plenty of push opportunities
        let g = complete(
            n,
            WeightModel::GeometricClasses {
                classes: 20,
                base: 2,
            },
            &mut rng,
        );
        let m_edges = g.edge_count() as f64;
        let nlogn = n as f64 * (n as f64).log2();

        // adversarial: ascending weights — every heavier edge clears the
        // potentials learned from lighter ones far more often
        let mut asc = g.edges().to_vec();
        asc.sort_by_key(|e| e.weight);
        let mut s = VecStream::adversarial(asc).with_vertex_count(n);
        let res = rand_arr_matching(
            &mut s,
            &RandArrConfig {
                p: 0.1,
                ..Default::default()
            },
        );
        t.row(vec![
            n.to_string(),
            (m_edges as usize).to_string(),
            "ascending".into(),
            res.stack_size.to_string(),
            res.t_size.to_string(),
            format!("{:.3}", (res.stack_size + res.t_size) as f64 / m_edges),
            format!("{:.3}", (res.stack_size + res.t_size) as f64 / nlogn),
        ]);

        let mut s = VecStream::random_order(g.edges().to_vec(), 42).with_vertex_count(n);
        let res = rand_arr_matching(
            &mut s,
            &RandArrConfig {
                p: 0.1,
                ..Default::default()
            },
        );
        t.row(vec![
            n.to_string(),
            (m_edges as usize).to_string(),
            "random".into(),
            res.stack_size.to_string(),
            res.t_size.to_string(),
            format!("{:.3}", (res.stack_size + res.t_size) as f64 / m_edges),
            format!("{:.3}", (res.stack_size + res.t_size) as f64 / nlogn),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: under random order the stored fraction of the stream falls as m grows \
         and tracks n·log n; ascending order stores a much larger fraction.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("ascending"));
    }
}
