//! E8 (Lemmas 3.3/3.15): random arrival keeps the local-ratio stack `S`
//! and the above-potential set `T` near-linear, while adversarial
//! (ascending-weight) orders blow them up. Driven through the unified
//! facade; the sizes come from the report's telemetry extras.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;
use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_graph::generators::{complete, WeightModel};
use wmatch_graph::Graph;

/// `Rand-Arr-Matching`'s (|S|, |T|) memory footprint on an instance.
fn memory_of(inst: &Instance) -> (usize, usize) {
    let res = solve("rand-arr-matching", inst, &SolveRequest::new()).expect("Algorithm 2");
    let stack: usize = res
        .telemetry
        .extra("stack_size")
        .expect("telemetry")
        .parse()
        .expect("numeric extra");
    let t: usize = res
        .telemetry
        .extra("t_size")
        .expect("telemetry")
        .parse()
        .expect("numeric extra");
    (stack, t)
}

/// Runs E8 and renders its section.
pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[24, 48] } else { &[30, 60, 90] };
    let mut out =
        String::from("## E8 — Lemmas 3.3/3.15: memory under random vs adversarial order\n\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "order",
        "|S| (stack)",
        "|T|",
        "(|S|+|T|)/m",
        "(|S|+|T|)/(n·log₂n)",
    ]);
    let mut rng = StdRng::seed_from_u64(8);
    for &n in sizes {
        // geometric weights give local-ratio plenty of push opportunities
        let g = complete(
            n,
            WeightModel::GeometricClasses {
                classes: 20,
                base: 2,
            },
            &mut rng,
        );
        let m_edges = g.edge_count() as f64;
        let nlogn = n as f64 * (n as f64).log2();

        // adversarial: ascending weights — every heavier edge clears the
        // potentials learned from lighter ones far more often
        let mut asc = g.edges().to_vec();
        asc.sort_by_key(|e| e.weight);
        let ascending = Graph::from_edges(n, asc);
        let (stack, t_size) = memory_of(&Instance::adversarial(ascending));
        t.row(vec![
            n.to_string(),
            (m_edges as usize).to_string(),
            "ascending".into(),
            stack.to_string(),
            t_size.to_string(),
            format!("{:.3}", (stack + t_size) as f64 / m_edges),
            format!("{:.3}", (stack + t_size) as f64 / nlogn),
        ]);

        let (stack, t_size) = memory_of(&Instance::random_order(g, 42));
        t.row(vec![
            n.to_string(),
            (m_edges as usize).to_string(),
            "random".into(),
            stack.to_string(),
            t_size.to_string(),
            format!("{:.3}", (stack + t_size) as f64 / m_edges),
            format!("{:.3}", (stack + t_size) as f64 / nlogn),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: under random order the stored fraction of the stream falls as m grows \
         and tracks n·log n; ascending order stores a much larger fraction.\n",
    );

    // Real counters from the flat hot path: the scratch arenas' dense
    // high-water mark and the CSR rebuild count of the (1−ε) offline
    // driver, straight from the facade's telemetry extras.
    out.push_str("\n### Scratch arenas, CSR rebuilds, and pool workers (main-alg-offline, real counters)\n\n");
    let mut t2 = Table::new(&[
        "n",
        "m",
        "scratch high-water",
        "high-water/n",
        "CSR rebuilds",
        "workers",
        "busy ms (per worker)",
    ]);
    let mut rng = StdRng::seed_from_u64(88);
    for &n in sizes {
        let g = complete(
            n,
            WeightModel::GeometricClasses {
                classes: 10,
                base: 2,
            },
            &mut rng,
        );
        let m_edges = g.edge_count();
        let res = solve(
            "main-alg-offline",
            &Instance::offline(g),
            &SolveRequest::new().with_threads(0),
        )
        .expect("Algorithm 3");
        let hw: usize = res
            .telemetry
            .extra("scratch_high_water")
            .expect("telemetry")
            .parse()
            .expect("numeric extra");
        let rebuilds: u64 = res
            .telemetry
            .extra("csr_rebuilds")
            .expect("telemetry")
            .parse()
            .expect("numeric extra");
        let workers = res
            .telemetry
            .extra("workers_used")
            .expect("telemetry")
            .to_string();
        let busy_ms = res
            .telemetry
            .extra("busy_ns")
            .expect("telemetry")
            .split(',')
            .map(|ns| format!("{:.1}", ns.parse::<u64>().unwrap_or(0) as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(" / ");
        t2.row(vec![
            n.to_string(),
            m_edges.to_string(),
            hw.to_string(),
            format!("{:.2}", hw as f64 / n as f64),
            rebuilds.to_string(),
            workers,
            busy_ms,
        ]);
    }
    out.push_str(&t2.to_markdown());
    out.push_str(
        "\nShape: the arenas are sized by the layered-graph vertex count (a small multiple \
         of n, independent of m), a read-only solve builds the CSR view at most once, and \
         the per-worker busy times show how evenly the class sweep spreads over the pool.\n",
    );

    // The dynamic engine's real counters on a churn workload: updates
    // applied, recourse (matching edges changed), and replay throughput,
    // straight from the facade's telemetry extras.
    out.push_str("\n### Update-stream engine counters (dynamic-wgtaug, real counters)\n\n");
    let mut t3 = Table::new(&[
        "n",
        "ops",
        "updates applied",
        "recourse total",
        "recourse/op",
        "augmentations",
        "updates/s",
        "certify ns",
    ]);
    let dyn_sizes: &[(usize, usize)] = if quick {
        &[(32, 400), (64, 800)]
    } else {
        &[(48, 1_000), (96, 2_000), (192, 4_000)]
    };
    for &(n, ops) in dyn_sizes {
        let w = crate::families::DynamicFamily::HeavyChurn.build(n, ops, 8);
        let inst = Instance::dynamic(w.initial, w.ops.clone());
        let res = solve(
            "dynamic-wgtaug",
            &inst,
            &SolveRequest::new().with_certify(true),
        )
        .expect("dynamic engine");
        let applied = res.telemetry.extra("updates_applied").expect("telemetry");
        let recourse: u64 = res
            .telemetry
            .extra("recourse_total")
            .expect("telemetry")
            .parse()
            .expect("numeric extra");
        let augs = res
            .telemetry
            .extra("augmentations_applied")
            .expect("telemetry");
        let ups = res.telemetry.extra("updates_per_sec").expect("telemetry");
        let certify_ns = res.telemetry.extra("certify_ns").expect("telemetry");
        t3.row(vec![
            n.to_string(),
            w.ops.len().to_string(),
            applied.to_string(),
            recourse.to_string(),
            format!("{:.3}", recourse as f64 / w.ops.len() as f64),
            augs.to_string(),
            ups.to_string(),
            certify_ns.to_string(),
        ]);
    }
    out.push_str(&t3.to_markdown());
    out.push_str(
        "\nShape: per-update recourse stays a small constant as both n and the op count \
         grow — the engine touches the ball around each update, never the whole matching.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("ascending"));
    }
}
