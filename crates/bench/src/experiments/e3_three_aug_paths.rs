//! E3 (Lemma 3.1): `Unw-3-Aug-Paths` recovers at least (β²/32)·|M| of
//! β·|M| planted vertex-disjoint 3-augmenting paths in O(|M|) space.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::table::{ratio, Table};
use wmatch_core::unw3aug::Unw3AugPaths;
use wmatch_graph::generators::planted_3aug_paths;

/// Runs E3 and renders its section.
pub fn run(quick: bool) -> String {
    let total = if quick { 100 } else { 1000 };
    let seeds = if quick { 3 } else { 10 };
    let mut out = String::from("## E3 — Lemma 3.1: Unw-3-Aug-Paths recovery rate and space\n\n");
    let mut t = Table::new(&[
        "β",
        "planted",
        "recovered (avg)",
        "recovered/|M|",
        "promised β²/32",
        "support/|M| (≤4)",
    ]);
    for beta_pct in [10u64, 25, 50, 75, 100] {
        let k = (total * beta_pct as usize) / 100;
        let beta = k as f64 / total as f64;
        let lambda = (8.0 / beta).ceil() as u32;
        let mut recovered_sum = 0.0;
        let mut support_sum = 0.0;
        for seed in 0..seeds {
            let (_, m, mut wings) = planted_3aug_paths(k, total);
            wings.shuffle(&mut StdRng::seed_from_u64(seed));
            let mut alg = Unw3AugPaths::new(m, lambda);
            for e in wings {
                alg.feed(e);
            }
            recovered_sum += alg.finalize().len() as f64;
            support_sum += alg.support_size() as f64;
        }
        let rec = recovered_sum / seeds as f64;
        t.row(vec![
            format!("{:.2}", beta),
            k.to_string(),
            format!("{rec:.1}"),
            ratio(rec / total as f64),
            ratio(beta * beta / 32.0),
            format!("{:.2}", support_sum / seeds as f64 / total as f64),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: recovered/|M| dominates the promised β²/32 at every β; support stays ≤ 4|M|.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("β²/32"));
    }
}
