//! E5 (Theorem 4.1/1.2, offline): the (1−ε) machinery — ratio versus
//! configuration, and the per-round convergence series.
//!
//! Paper claim: while `w(M) < (1−ε)·w(M*)`, one Algorithm 3 round gains
//! `Ω_ε(w(M*))`; iterating reaches (1−ε). Shape to verify: the ratio is
//! monotone in rounds, improves with finer granularity `q`, always clears
//! the coarse config's design target, and the warm-started variant
//! dominates the greedy baseline it starts from.

use std::time::Instant;

use crate::families::Family;
use crate::table::{ratio, Table};
use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::main_alg::{
    max_weight_matching_offline_from, max_weight_matching_offline_traced, MainAlgConfig,
};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::Matching;

/// Runs E5 and renders its section.
pub fn run(quick: bool) -> String {
    let n = if quick { 32 } else { 60 };
    let mut out = String::from("## E5 — Theorem 1.2 (offline): (1−ε) via layered graphs\n\n");
    let mut t = Table::new(&[
        "family",
        "greedy(1/2)",
        "cold q=8",
        "cold q=16",
        "greedy+aug q=32",
        "rounds(q16)",
        "time(q16)",
    ]);
    for family in [
        Family::GnpUniform,
        Family::BipartiteUniform,
        Family::AlternatingCycles,
        Family::WeightedBarrier,
    ] {
        let g = family.build(n, 9);
        let opt = max_weight_matching(&g).weight() as f64;
        if opt == 0.0 {
            continue;
        }
        let greedy = greedy_by_weight(&g);
        let p8 = MainAlgConfig::practical(0.25, 5);
        let (m8, _) = max_weight_matching_offline_traced(&g, &p8);
        let p16 = MainAlgConfig::thorough(0.25, 5);
        let t0 = Instant::now();
        let (m16, trace16) = max_weight_matching_offline_traced(&g, &p16);
        let q16_time = t0.elapsed();
        let mut p32 = MainAlgConfig::practical(0.25, 5);
        p32.q = 32;
        p32.trials = 6;
        let (warm, _) = max_weight_matching_offline_from(&g, greedy.clone(), &p32);
        t.row(vec![
            family.name().into(),
            ratio(greedy.weight() as f64 / opt),
            ratio(m8.weight() as f64 / opt),
            ratio(m16.weight() as f64 / opt),
            ratio(warm.weight() as f64 / opt),
            trace16.len().to_string(),
            format!("{:.2}s", q16_time.as_secs_f64()),
        ]);
    }
    out.push_str(&t.to_markdown());

    // convergence series on one instance (the paper's "repeat f(eps) times")
    let g = Family::GnpUniform.build(n, 11);
    let opt = max_weight_matching(&g).weight() as f64;
    let (_, trace) = max_weight_matching_offline_traced(&g, &MainAlgConfig::thorough(0.25, 2));
    let mut t2 = Table::new(&["round", "w(M)", "w(M)/w(M*)"]);
    for (i, w) in trace.iter().enumerate() {
        t2.row(vec![
            (i + 1).to_string(),
            w.to_string(),
            ratio(*w as f64 / opt),
        ]);
    }
    out.push_str("\nConvergence from the empty matching (gnp-uniform):\n\n");
    out.push_str(&t2.to_markdown());

    // cycle-only instances: the blow-up machinery at work
    let (g, m0) = wmatch_graph::generators::four_cycle_eps(4);
    let mut cfg = MainAlgConfig::practical(0.1, 5);
    cfg.q = 32;
    cfg.max_layers = 7;
    cfg.trials = 16;
    cfg.stall_rounds = 4;
    let (m, _) = max_weight_matching_offline_from(&g, m0.clone(), &cfg);
    out.push_str(&format!(
        "\nAugmenting-cycle check (4-cycle weights 4,5,4,5; perfect matching start): {} -> {} (optimum 10)\n",
        m0.weight(),
        m.weight()
    ));
    let _: Matching = m;
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("Convergence"));
        assert!(md.contains("optimum 10"));
    }
}
