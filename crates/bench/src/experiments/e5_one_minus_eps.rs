//! E5 (Theorem 4.1/1.2, offline): the (1−ε) machinery — ratio versus
//! effort, and the per-round convergence series — driven through the
//! unified facade.
//!
//! Paper claim: while `w(M) < (1−ε)·w(M*)`, one Algorithm 3 round gains
//! `Ω_ε(w(M*))`; iterating reaches (1−ε). Shape to verify: the ratio is
//! monotone in rounds, improves with the thorough effort level (finer
//! granularity), always clears the standard config's design target, and
//! the warm-started variant dominates the greedy baseline it starts from.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::families::Family;
use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Effort, Instance, SolveRequest};
use wmatch_core::main_alg::{improve_matching_offline, MainAlgConfig};
use wmatch_graph::Matching;

/// Runs E5 and renders its section.
pub fn run(quick: bool) -> String {
    let n = if quick { 32 } else { 60 };
    let mut out = String::from("## E5 — Theorem 1.2 (offline): (1−ε) via layered graphs\n\n");
    let mut t = Table::new(&[
        "family",
        "greedy(1/2)",
        "cold standard",
        "cold thorough",
        "greedy+aug thorough",
        "rounds(thorough)",
        "time(thorough)",
    ]);
    for family in [
        Family::GnpUniform,
        Family::BipartiteUniform,
        Family::AlternatingCycles,
        Family::WeightedBarrier,
    ] {
        let g = family.build(n, 9);
        let opt = opt_weight(&g) as f64;
        if opt == 0.0 {
            continue;
        }
        let inst = Instance::offline(g);
        let greedy = solve("greedy", &inst, &SolveRequest::new()).expect("greedy");
        let standard = solve("main-alg-offline", &inst, &SolveRequest::new().with_seed(5))
            .expect("standard effort");
        let thorough = solve(
            "main-alg-offline",
            &inst,
            &SolveRequest::new()
                .with_seed(5)
                .with_effort(Effort::Thorough),
        )
        .expect("thorough effort");
        let warm = solve(
            "main-alg-offline",
            &inst,
            &SolveRequest::new()
                .with_seed(5)
                .with_effort(Effort::Thorough)
                .with_warm_start(greedy.matching.clone()),
        )
        .expect("warm start");
        t.row(vec![
            family.name().into(),
            ratio(greedy.value as f64 / opt),
            ratio(standard.value as f64 / opt),
            ratio(thorough.value as f64 / opt),
            ratio(warm.value as f64 / opt),
            thorough.telemetry.rounds.to_string(),
            format!("{:.2}s", thorough.telemetry.wall.as_secs_f64()),
        ]);
    }
    out.push_str(&t.to_markdown());

    // convergence series on one instance (the paper's "repeat f(eps) times")
    let g = Family::GnpUniform.build(n, 11);
    let opt = opt_weight(&g) as f64;
    let report = solve(
        "main-alg-offline",
        &Instance::offline(g),
        &SolveRequest::new()
            .with_seed(2)
            .with_effort(Effort::Thorough),
    )
    .expect("thorough effort");
    let mut t2 = Table::new(&["round", "w(M)", "w(M)/w(M*)"]);
    for (i, w) in report.telemetry.trace.iter().enumerate() {
        t2.row(vec![
            (i + 1).to_string(),
            w.to_string(),
            ratio(*w as f64 / opt),
        ]);
    }
    out.push_str("\nConvergence from the empty matching (gnp-uniform):\n\n");
    out.push_str(&t2.to_markdown());

    // cycle-only instances: the blow-up machinery at work. This needs a
    // layered configuration finer than the facade's effort levels, so it
    // drives the internal round primitive directly.
    let (g, m0) = wmatch_graph::generators::four_cycle_eps(4);
    let cfg = MainAlgConfig::practical(0.1, 5)
        .with_q(32)
        .with_max_layers(7)
        .with_trials(16);
    let mut m = m0.clone();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..12 {
        improve_matching_offline(&g, &mut m, &cfg, &mut rng);
    }
    out.push_str(&format!(
        "\nAugmenting-cycle check (4-cycle weights 4,5,4,5; perfect matching start): {} -> {} (optimum 10)\n",
        m0.weight(),
        m.weight()
    ));
    let _: Matching = m;
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("Convergence"));
        assert!(md.contains("optimum 10"));
    }
}
