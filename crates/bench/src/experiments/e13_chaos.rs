//! E13 (robustness): the chaos suite — deterministic fault injection
//! (poisoned ops, worker panics, bit-flipped matching entries), WAL +
//! snapshot crash recovery, degraded-mode serve throughput, and the
//! adversarial worst-case quality floor, recorded to `BENCH_chaos.json`.
//! Thin alias for [`crate::chaos::run`] so the experiment id and the
//! suite name both reach the same code.

/// Runs E13 and renders its section (see [`crate::chaos`]).
pub fn run(quick: bool) -> String {
    crate::chaos::run(quick)
}
