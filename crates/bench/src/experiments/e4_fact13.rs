//! E4 (Fact 1.3): a matching with no augmenting path or cycle of length at
//! most 2ℓ−1 is a (1−1/ℓ)-approximation.
//!
//! Exhaustively verified on random small graphs: whenever the premise
//! holds, the observed ratio must be at or above the bound; the table also
//! reports how tight the bound gets (the observed minimum).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_graph::aug_search::exists_augmentation;
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_graph::Matching;

/// Runs E4 and renders its section.
pub fn run(quick: bool) -> String {
    let instances = if quick { 40 } else { 300 };
    let mut out = String::from("## E4 — Fact 1.3: short augmentations vs approximation\n\n");
    let mut t = Table::new(&[
        "ℓ",
        "bound 1-1/ℓ",
        "cases",
        "min observed ratio",
        "violations",
    ]);
    let mut rng = StdRng::seed_from_u64(4);
    for l in [2usize, 3, 4] {
        let mut cases = 0usize;
        let mut min_ratio = f64::INFINITY;
        let mut violations = 0usize;
        for _ in 0..instances {
            let g = gnp(9, 0.4, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
            let opt = opt_weight(&g);
            if opt == 0 {
                continue;
            }
            // arrival-order greedy as the examined matching
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            if !exists_augmentation(&g, &m, 2 * l - 1) {
                cases += 1;
                let r = m.weight() as f64 / opt as f64;
                min_ratio = min_ratio.min(r);
                if m.weight() * (l as i128) < (l as i128 - 1) * opt {
                    violations += 1;
                }
            }
        }
        t.row(vec![
            l.to_string(),
            ratio(1.0 - 1.0 / l as f64),
            cases.to_string(),
            if cases > 0 {
                ratio(min_ratio)
            } else {
                "—".into()
            },
            violations.to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: zero violations; the minimum observed ratio approaches the bound from above.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_has_no_violations() {
        let md = super::run(true);
        for line in md
            .lines()
            .filter(|l| l.starts_with("| 2") || l.starts_with("| 3"))
        {
            let last_cell = line
                .split('|')
                .rev()
                .map(str::trim)
                .find(|c| !c.is_empty())
                .unwrap();
            assert_eq!(last_cell, "0", "violation reported: {line}");
        }
    }
}
