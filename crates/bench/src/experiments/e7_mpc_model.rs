//! E7 (Theorem 1.2.1): the MPC driver — rounds and per-machine memory —
//! driven through the unified facade.
//!
//! Paper claim: (1−ε) weighted matching in O_ε(U_M) MPC rounds with
//! O(m/n) machines of Õ(n) memory. Shape to verify: model rounds are flat
//! in n (per-round box rounds depend on δ, not n); per-machine memory
//! stays within the Õ(n) budget while total m grows.

use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Instance, SolveRequest};
use wmatch_graph::generators::{gnp, WeightModel};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E7 and renders its section.
pub fn run(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[32, 64, 96] };
    let mut out = String::from("## E7 — Theorem 1.2.1: MPC driver\n\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "machines",
        "S (words)",
        "ratio",
        "rounds (model)",
        "peak machine words",
    ]);
    let mut rng = StdRng::seed_from_u64(7);
    for &n in sizes {
        let p = (10.0 / n as f64).min(0.5);
        let g = gnp(n, p, WeightModel::Uniform { lo: 1, hi: 64 }, &mut rng);
        let opt = opt_weight(&g) as f64;
        if opt == 0.0 {
            continue;
        }
        let machines = (g.edge_count() / n).clamp(2, 8);
        let s_words = 40 * n;
        let req = SolveRequest::new()
            .with_seed(11)
            .with_round_budget(if quick { 4 } else { 8 });
        let res = solve(
            "main-alg-mpc",
            &Instance::mpc(g.clone(), machines, s_words),
            &req,
        )
        .expect("instance fits the budgets");
        t.row(vec![
            n.to_string(),
            g.edge_count().to_string(),
            machines.to_string(),
            s_words.to_string(),
            ratio(res.value as f64 / opt),
            res.telemetry.rounds.to_string(),
            res.telemetry.peak_stored_edges.to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nShape: rounds track the round budget (flat in n); machine memory well under S.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("rounds (model)"));
    }
}
