//! E2 (Theorem 1.1): the (½+c)-approximation for weighted matching on
//! random-arrival streams.
//!
//! Paper claim: single pass, random arrivals, expected ratio ½+c for an
//! absolute constant c > 0 (prior art: ½−ε). Shape to verify:
//! `Rand-Arr-Matching` never trails the local-ratio baseline and the
//! average ratio sits clearly above ½ on every family.

use crate::families::Family;
use crate::table::{ratio, Table};
use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::Matching;
use wmatch_stream::{EdgeStream, VecStream};

/// Runs E2 and renders its section.
pub fn run(quick: bool) -> String {
    let seeds: u64 = if quick { 3 } else { 10 };
    let n = if quick { 80 } else { 240 };
    let mut out = String::from("## E2 — Theorem 1.1: (1/2+c)-approx weighted, random arrivals\n\n");
    let mut t = Table::new(&[
        "family",
        "n",
        "m",
        "greedy-arrival",
        "local-ratio",
        "Rand-Arr-Matching",
    ]);
    for family in [
        Family::WeightedBarrier,
        Family::GnpUniform,
        Family::GnpGeometric,
        Family::BipartiteUniform,
        Family::AlternatingCycles,
    ] {
        let g = family.build(n, 3);
        let opt = max_weight_matching(&g).weight() as f64;
        if opt == 0.0 {
            continue;
        }
        let (mut gr, mut lr_r, mut ra) = (0.0, 0.0, 0.0);
        for seed in 0..seeds {
            let mut s = VecStream::random_order(g.edges().to_vec(), seed)
                .with_vertex_count(g.vertex_count());
            let mut greedy = Matching::new(g.vertex_count());
            s.stream_pass(&mut |e| {
                let _ = greedy.insert(e);
            });
            gr += greedy.weight() as f64 / opt;

            let mut s = VecStream::random_order(g.edges().to_vec(), seed)
                .with_vertex_count(g.vertex_count());
            let mut lr = LocalRatio::new(g.vertex_count());
            s.stream_pass(&mut |e| lr.on_edge(e));
            lr_r += lr.unwind().weight() as f64 / opt;

            let mut s = VecStream::random_order(g.edges().to_vec(), seed)
                .with_vertex_count(g.vertex_count());
            let mut cfg = RandArrConfig::default();
            cfg.wap.seed = seed ^ 0xabc;
            ra += rand_arr_matching(&mut s, &cfg).matching.weight() as f64 / opt;
        }
        let k = seeds as f64;
        t.row(vec![
            family.name().into(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            ratio(gr / k),
            ratio(lr_r / k),
            ratio(ra / k),
        ]);
    }
    out.push_str(&t.to_markdown());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("Rand-Arr-Matching"));
    }
}
