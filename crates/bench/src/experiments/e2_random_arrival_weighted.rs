//! E2 (Theorem 1.1): the (½+c)-approximation for weighted matching on
//! random-arrival streams, driven through the unified facade.
//!
//! Paper claim: single pass, random arrivals, expected ratio ½+c for an
//! absolute constant c > 0 (prior art: ½−ε). Shape to verify:
//! `Rand-Arr-Matching` never trails the local-ratio baseline and the
//! average ratio sits clearly above ½ on every family.

use crate::families::Family;
use crate::oracle::opt_weight;
use crate::table::{ratio, Table};
use wmatch_api::{solve, Instance, SolveRequest};

/// Runs E2 and renders its section.
pub fn run(quick: bool) -> String {
    let seeds: u64 = if quick { 3 } else { 10 };
    let n = if quick { 80 } else { 240 };
    let mut out = String::from("## E2 — Theorem 1.1: (1/2+c)-approx weighted, random arrivals\n\n");
    let mut t = Table::new(&[
        "family",
        "n",
        "m",
        "greedy-arrival",
        "local-ratio",
        "Rand-Arr-Matching",
    ]);
    for family in [
        Family::WeightedBarrier,
        Family::GnpUniform,
        Family::GnpGeometric,
        Family::BipartiteUniform,
        Family::AlternatingCycles,
    ] {
        let g = family.build(n, 3);
        let opt = opt_weight(&g) as f64;
        if opt == 0.0 {
            continue;
        }
        let (mut gr, mut lr_r, mut ra) = (0.0, 0.0, 0.0);
        for seed in 0..seeds {
            let inst = Instance::random_order(g.clone(), seed);
            let req = SolveRequest::new();
            gr += solve("greedy", &inst, &req).expect("greedy").value as f64 / opt;
            lr_r += solve("local-ratio", &inst, &req)
                .expect("local-ratio")
                .value as f64
                / opt;
            ra += solve("rand-arr-matching", &inst, &req.with_seed(seed ^ 0xabc))
                .expect("Algorithm 2")
                .value as f64
                / opt;
        }
        let k = seeds as f64;
        t.row(vec![
            family.name().into(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            ratio(gr / k),
            ratio(lr_r / k),
            ratio(ra / k),
        ]);
    }
    out.push_str(&t.to_markdown());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_tables() {
        let md = super::run(true);
        assert!(md.contains("Rand-Arr-Matching"));
        assert!(md.contains("gnp-uniform"));
    }
}
