//! E12 — the marketplace serve benchmark: the sharded dynamic engine as
//! a million-user matching service.
//!
//! `report -- serve` (or `-- e12`) replays the hotspot-skewed
//! [`marketplace`] update stream through
//! [`ShardedMatcher`] at service scale — n = 10⁶ users and ≥10⁶ applied
//! updates per row in full mode — and writes `BENCH_serve.json` with
//! replay throughput (`updates_per_sec`) and batch-amortized per-update
//! ingest latency (`p50_us`/`p99_us`, one sample per committed batch).
//! Each row is the **best of N replays** (N in the JSON header), so the
//! committed numbers are repeatable peak throughput, not a draw from the
//! scheduler-noise distribution.
//!
//! Rows come in three flavours: `sequential` (the reference engine),
//! `sharded` at `threads = 1` (the inline commit path — this is the row
//! the ≤10% overhead target and the `WMATCH_SERVE_GUARD` CI guard
//! compare against sequential), and `sharded` at `threads = 2` (the
//! speculative ball-repair path, priced on whatever cores the host has —
//! `hardware_threads` in the header says how many that was).
//!
//! Two guards run **before** any timing, because a throughput number for
//! a wrong result is meaningless:
//!
//! 1. **Determinism** — on a scaled-down stream (with rebuild epochs
//!    enabled), the full acceptance grid of shard count × thread count ×
//!    batch size must commit a matching and counters bit-identical to
//!    the sequential [`DynamicMatcher`].
//! 2. **Quality floor** — on an oracle-feasible sub-sample the committed
//!    matching meets the Fact 1.3 ½ floor against an exact blossom solve
//!    at every checkpoint; after each timed row the final million-vertex
//!    matching is certified to admit no positive short augmentation (the
//!    exact invariant Fact 1.3 turns into the floor).
//!
//! With `WMATCH_SERVE_GUARD=1` in the environment, the suite additionally
//! fails if the `sharded@1 (threads=1)` row falls more than 15% behind
//! sequential — the regression guard for the "parallel structure costs
//! ~nothing at one thread" contract.

use std::time::Instant;

use wmatch_dynamic::{DynamicConfig, DynamicMatcher, ShardedMatcher, UpdateOp};
use wmatch_graph::aug_search::best_augmentation;
use wmatch_graph::exact::max_weight_matching;

use crate::families::marketplace;

/// One measured row of `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Engine label (`sequential` or `sharded`).
    pub engine: &'static str,
    /// Shard count (1 for the sequential engine).
    pub shards: usize,
    /// Worker threads of the engine's pool.
    pub threads: usize,
    /// Ingest batch size.
    pub batch: usize,
    /// Users (vertices).
    pub n: usize,
    /// Updates applied by this row.
    pub ops: usize,
    /// Replay throughput in updates per second (best of N replays).
    pub updates_per_sec: f64,
    /// Median batch-amortized per-update ingest latency (µs).
    pub p50_us: f64,
    /// 99th-percentile batch-amortized per-update ingest latency (µs).
    pub p99_us: f64,
    /// Total net matching-edge changes across the replay.
    pub recourse_total: u64,
    /// Final matching weight.
    pub final_weight: i128,
    /// Speculative plans committed by replay (sharded rows).
    pub replayed: u64,
    /// Ops that fell back to sequential repair (sharded rows).
    pub fallbacks: u64,
    /// Ops committed through the one-worker inline path.
    pub inline: u64,
    /// Ball-overlap groups formed across the replay's batches.
    pub overlap_groups: u64,
    /// Ops speculated in the parallel ball phase.
    pub balls_parallel: u64,
    /// Chunks stolen by the work-stealing pool.
    pub steals: u64,
}

/// Percentile over per-batch latency samples (nearest-rank on the sorted
/// list; `q` in [0, 1]).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The host's available hardware parallelism (what `threads = 0`
/// resolves to), recorded so committed runs are self-describing.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Asserts the sharded engine's determinism contract on a scaled-down
/// marketplace stream: the full acceptance grid — shards {1, 4, 8} ×
/// threads {1, 2, 4, 0} × batch {64, 256, 512} — commits bit-identical
/// state to the sequential engine, with rebuild epochs enabled so the
/// parallel epoch layer is covered too.
fn assert_determinism(n: usize, ops: usize) {
    let w = marketplace(n, ops, 0xE12);
    let cfg = DynamicConfig::default()
        .with_seed(5)
        .with_rebuild_threshold(ops / 3);
    let mut seq = DynamicMatcher::new(n, cfg);
    seq.apply_all(&w.ops)
        .expect("generated stream is well-formed");
    for shards in [1usize, 4, 8] {
        for threads in [1usize, 2, 4, 0] {
            for batch in [64usize, 256, 512] {
                let mut sh = ShardedMatcher::new(n, cfg.with_threads(threads), shards)
                    .with_batch_size(batch);
                sh.apply_all(&w.ops).expect("same stream");
                assert_eq!(
                    seq.matching().to_edges(),
                    sh.matching().to_edges(),
                    "serve determinism: shards={shards} threads={threads} batch={batch}"
                );
                assert_eq!(
                    seq.counters(),
                    sh.counters(),
                    "serve counters: shards={shards} threads={threads} batch={batch}"
                );
            }
        }
    }
}

/// Asserts the Fact 1.3 ½ floor against the exact blossom oracle at
/// checkpoints of an oracle-feasible marketplace sub-sample, replayed
/// through the sharded engine itself (with the speculative path engaged).
fn assert_oracle_floor_subsample(n: usize, ops: usize, checkpoint: usize) {
    let w = marketplace(n, ops, 0xF100);
    let cfg = DynamicConfig::default().with_seed(5).with_threads(2);
    let mut sh = ShardedMatcher::new(n, cfg, 4);
    for (i, chunk) in w.ops.chunks(checkpoint).enumerate() {
        sh.apply_all(chunk)
            .expect("generated stream is well-formed");
        let snap = sh.graph().snapshot();
        sh.matching()
            .validate(Some(&snap))
            .unwrap_or_else(|e| panic!("serve floor checkpoint {i}: invalid matching: {e}"));
        assert!(
            best_augmentation(&snap, sh.matching(), cfg.max_len).is_none(),
            "serve floor checkpoint {i}: a positive short augmentation survived"
        );
        let opt = max_weight_matching(&snap).weight();
        assert!(
            sh.matching().weight() * 2 >= opt,
            "serve floor checkpoint {i}: {} below half of optimum {opt}",
            sh.matching().weight()
        );
    }
}

/// One timed replay of `ops` through one engine configuration; returns
/// the row plus the raw busy seconds (for best-of-N selection).
fn replay_once(
    engine: &'static str,
    n: usize,
    ops: &[UpdateOp],
    shards: usize,
    threads: usize,
    batch: usize,
) -> (ServeRow, f64) {
    let cfg = DynamicConfig::default().with_seed(5).with_threads(threads);
    let mut lat_us: Vec<f64> = Vec::with_capacity(ops.len() / batch + 1);
    // replay time = the sum of the timed batches (the final-snapshot
    // certificate below is verification, not service work)
    let mut busy = 0.0f64;
    let (matching_weight, recourse, replayed, fallbacks, inline, groups, balls, steals) =
        if engine == "sequential" {
            let mut eng = DynamicMatcher::new(n, cfg);
            for chunk in ops.chunks(batch) {
                let t = Instant::now();
                eng.apply_all(chunk)
                    .expect("generated stream is well-formed");
                let dt = t.elapsed().as_secs_f64();
                busy += dt;
                lat_us.push(dt * 1e6 / chunk.len() as f64);
            }
            // the Fact 1.3 certificate on the full final graph: the
            // invariant the ½ floor follows from, checkable without the
            // O(n³) oracle
            let snap = eng.graph().snapshot();
            assert!(
                best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
                "{engine}: a positive short augmentation survived the replay"
            );
            let w = eng.matching().weight();
            (
                w,
                eng.counters().recourse_total,
                0,
                0,
                0,
                0,
                0,
                eng.steals(),
            )
        } else {
            let mut eng = ShardedMatcher::new(n, cfg, shards).with_batch_size(batch);
            for chunk in ops.chunks(batch) {
                let t = Instant::now();
                eng.apply_batch(chunk)
                    .expect("generated stream is well-formed");
                let dt = t.elapsed().as_secs_f64();
                busy += dt;
                lat_us.push(dt * 1e6 / chunk.len() as f64);
            }
            let snap = eng.graph().snapshot();
            assert!(
                best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
                "{engine}({shards}): a positive short augmentation survived the replay"
            );
            (
                eng.matching().weight(),
                eng.counters().recourse_total,
                eng.replayed(),
                eng.fallbacks(),
                eng.inline_commits(),
                eng.overlap_groups(),
                eng.balls_parallel(),
                eng.steals(),
            )
        };
    lat_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let row = ServeRow {
        engine,
        shards,
        threads,
        batch,
        n,
        ops: ops.len(),
        updates_per_sec: ops.len() as f64 / busy.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        recourse_total: recourse,
        final_weight: matching_weight,
        replayed,
        fallbacks,
        inline,
        overlap_groups: groups,
        balls_parallel: balls,
        steals,
    };
    (row, busy)
}

/// Measures one configuration `best_of` times and keeps the fastest
/// replay (every replay commits the identical state — only timing
/// varies, so best-of-N is selection, not cherry-picking).
fn measure(
    engine: &'static str,
    n: usize,
    ops: &[UpdateOp],
    shards: usize,
    threads: usize,
    batch: usize,
    best_of: usize,
) -> ServeRow {
    let mut best: Option<(ServeRow, f64)> = None;
    for _ in 0..best_of.max(1) {
        let (row, busy) = replay_once(engine, n, ops, shards, threads, batch);
        if best.as_ref().is_none_or(|(_, b)| busy < *b) {
            best = Some((row, busy));
        }
    }
    best.expect("at least one replay ran").0
}

/// How many replays each row keeps the best of.
fn best_of(quick: bool) -> usize {
    if quick {
        2
    } else {
        3
    }
}

/// Runs the whole serve suite: guards first, then the timed rows, then
/// (under `WMATCH_SERVE_GUARD=1`) the sharded@1 overhead guard.
pub fn run_suite(quick: bool) -> Vec<ServeRow> {
    // batch 256 is the measured sweet spot on the marketplace stream:
    // large enough to amortize the speculation phase, small enough that
    // cross-group conflicts stay rare and most plans commit by replay
    let (n, ops, batch) = if quick {
        (10_000usize, 100_000usize, 256usize)
    } else {
        (1_000_000, 2_000_000, 256)
    };
    // guard 1: determinism (scaled-down, epochs enabled, full grid)
    let (gn, gops) = if quick { (800, 6_000) } else { (2_000, 20_000) };
    assert_determinism(gn, gops);
    // guard 2: the ½ floor against the exact oracle on a feasible
    // sub-sample, replayed through the sharded engine itself
    let (fn_, fops, fcheck) = if quick {
        (96, 1_500, 500)
    } else {
        (120, 3_000, 750)
    };
    assert_oracle_floor_subsample(fn_, fops, fcheck);

    let w = marketplace(n, ops, 0xCAFE);
    let reps = best_of(quick);
    let mut rows = vec![measure("sequential", n, &w.ops, 1, 1, batch, reps)];
    // threads = 1: the inline path — the overhead-parity rows
    for shards in [1usize, 4, 8] {
        rows.push(measure("sharded", n, &w.ops, shards, 1, batch, reps));
    }
    // threads = 2: the speculative ball-repair path, priced on this host
    for shards in [1usize, 8] {
        rows.push(measure("sharded", n, &w.ops, shards, 2, batch, reps));
    }
    // the engines must agree at scale too (cheap: weights + recourse are
    // already collected per row)
    for r in &rows[1..] {
        assert_eq!(
            r.final_weight, rows[0].final_weight,
            "sharded({}@{}) final weight diverged from sequential",
            r.shards, r.threads
        );
        assert_eq!(
            r.recourse_total, rows[0].recourse_total,
            "sharded({}@{}) recourse diverged from sequential",
            r.shards, r.threads
        );
    }
    if std::env::var("WMATCH_SERVE_GUARD").as_deref() == Ok("1") {
        assert_serve_guard(&rows);
    }
    rows
}

/// The CI overhead guard: `sharded@1 (threads=1)` must stay within 15%
/// of sequential throughput — the "parallel structure costs ~nothing at
/// one thread" contract, enforced.
fn assert_serve_guard(rows: &[ServeRow]) {
    let seq = rows
        .iter()
        .find(|r| r.engine == "sequential")
        .expect("suite always measures sequential");
    let sh1 = rows
        .iter()
        .find(|r| r.engine == "sharded" && r.shards == 1 && r.threads == 1)
        .expect("suite always measures sharded@1 threads=1");
    assert!(
        sh1.updates_per_sec >= 0.85 * seq.updates_per_sec,
        "serve guard: sharded@1 at {:.0} updates/s is more than 15% behind sequential at {:.0}",
        sh1.updates_per_sec,
        seq.updates_per_sec
    );
}

/// Serializes the rows as `BENCH_serve.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(rows: &[ServeRow], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"hardware_threads\": {},\n  \"policy\": \"each row is the best of {} full replays (identical committed state per replay; only timing varies)\",\n  \"workload\": \"marketplace (hotspot-skewed sliding-window churn)\",\n  \"unit\": \"updates_per_sec; p50_us/p99_us are batch-amortized per-update ingest latencies\",\n  \"determinism\": \"sharded engine asserted bit-identical to sequential for shards 1/4/8 x threads 1/2/4/0 x batch 64/256/512 (rebuild epochs enabled) before timing; final weight and recourse re-asserted at full scale\",\n  \"floor\": \"Fact 1.3 half floor asserted against the exact blossom oracle at checkpoints of a feasible sub-sample, replayed through the sharded engine\",\n  \"benches\": [\n",
        if quick { "quick" } else { "full" },
        hardware_threads(),
        best_of(quick),
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"shards\": {}, \"threads\": {}, \"batch\": {}, \"n\": {}, \
             \"ops\": {}, \"updates_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
             \"recourse_total\": {}, \"final_weight\": {}, \"replayed\": {}, \
             \"fallbacks\": {}, \"inline\": {}, \"overlap_groups\": {}, \
             \"balls_parallel\": {}, \"steals\": {}}}{}\n",
            r.engine,
            r.shards,
            r.threads,
            r.batch,
            r.n,
            r.ops,
            r.updates_per_sec,
            r.p50_us,
            r.p99_us,
            r.recourse_total,
            r.final_weight,
            r.replayed,
            r.fallbacks,
            r.inline,
            r.overlap_groups,
            r.balls_parallel,
            r.steals,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the suite, writes `BENCH_serve.json` (next to the working
/// directory; override with `WMATCH_BENCH_DIR`), and renders the
/// markdown section.
pub fn run(quick: bool) -> String {
    let t0 = Instant::now();
    let rows = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write BENCH_serve.json");

    let mut out =
        String::from("## E12 — marketplace serve: the sharded engine at service scale\n\n");
    out.push_str(&format!(
        "written: `{}` (determinism and the Fact 1.3 ½ floor asserted before timing; \
         latencies are batch-amortized per update; each row is the best of {} replays)\n\n",
        path.display(),
        best_of(quick),
    ));
    out.push_str("| engine | shards | threads | n | ops | updates/s | p50 µs | p99 µs | recourse | replayed | fallbacks | inline | groups | steals |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.0} | {:.2} | {:.2} | {} | {} | {} | {} | {} | {} |\n",
            r.engine,
            r.shards,
            r.threads,
            r.n,
            r.ops,
            r.updates_per_sec,
            r.p50_us,
            r.p99_us,
            r.recourse_total,
            r.replayed,
            r.fallbacks,
            r.inline,
            r.overlap_groups,
            r.steals
        ));
    }
    out.push_str(&format!(
        "\nShape: all engines commit the identical matching (that is the contract, asserted \
         above). The threads=1 sharded rows take the inline commit path — same code as \
         sequential, so their throughput gap is pure facade overhead and the serve guard \
         holds it within 15%. The threads=2 rows price the speculative ball-repair path \
         ({} on this host): grouping, plan arenas, and in-order commit, \
         with the hotspot skew showing up as fallbacks on hot groups while disjoint \
         groups replay. (suite ran in {:.1}s)\n",
        match hardware_threads() {
            1 => "1 hardware thread".to_string(),
            t => format!("{t} hardware threads"),
        },
        t0.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable() {
        let rows = vec![ServeRow {
            engine: "sharded",
            shards: 4,
            threads: 2,
            batch: 256,
            n: 1000,
            ops: 5000,
            updates_per_sec: 123_456.7,
            p50_us: 1.25,
            p99_us: 9.5,
            recourse_total: 42,
            final_weight: 999,
            replayed: 4800,
            fallbacks: 200,
            inline: 0,
            overlap_groups: 77,
            balls_parallel: 5000,
            steals: 3,
        }];
        let j = to_json(&rows, true);
        assert!(j.contains("\"updates_per_sec\": 123456.7"));
        assert!(j.contains("\"p99_us\": 9.500"));
        assert!(j.contains("\"engine\": \"sharded\""));
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"hardware_threads\":"));
        assert!(j.contains("best of 2 full replays"));
        assert!(j.contains("\"overlap_groups\": 77"));
        assert!(j.contains("\"steals\": 3"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_suite_guards_and_measures() {
        // miniature end-to-end pass over the plumbing (not the sizes)
        assert_determinism(64, 400);
        assert_oracle_floor_subsample(32, 300, 150);
        let w = marketplace(128, 1_000, 1);
        let seq = measure("sequential", 128, &w.ops, 1, 1, 64, 1);
        let sh = measure("sharded", 128, &w.ops, 4, 1, 64, 1);
        assert_eq!(seq.final_weight, sh.final_weight);
        assert_eq!(seq.recourse_total, sh.recourse_total);
        assert!(sh.updates_per_sec > 0.0 && sh.p99_us >= sh.p50_us);
        assert_eq!(sh.inline, 1_000, "threads=1 commits everything inline");
        // the speculative path reports its grouping telemetry
        let sp = measure("sharded", 128, &w.ops, 4, 2, 64, 1);
        assert_eq!(sp.final_weight, seq.final_weight);
        assert_eq!(sp.inline, 0);
        assert_eq!(sp.balls_parallel, 1_000);
        assert_eq!(sp.replayed + sp.fallbacks, 1_000);
        assert!(sp.overlap_groups > 0);
    }

    #[test]
    fn serve_guard_trips_on_slow_sharded() {
        let mk = |engine: &'static str, threads: usize, ups: f64| ServeRow {
            engine,
            shards: 1,
            threads,
            batch: 256,
            n: 100,
            ops: 100,
            updates_per_sec: ups,
            p50_us: 1.0,
            p99_us: 2.0,
            recourse_total: 0,
            final_weight: 0,
            replayed: 0,
            fallbacks: 0,
            inline: 0,
            overlap_groups: 0,
            balls_parallel: 0,
            steals: 0,
        };
        // within 15%: fine
        assert_serve_guard(&[mk("sequential", 1, 100_000.0), mk("sharded", 1, 90_000.0)]);
        // beyond 15%: trips
        let r = std::panic::catch_unwind(|| {
            assert_serve_guard(&[mk("sequential", 1, 100_000.0), mk("sharded", 1, 70_000.0)]);
        });
        assert!(r.is_err(), "a 30% gap must trip the guard");
    }
}
