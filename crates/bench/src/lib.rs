//! Experiment harness for the wmatch workspace.
//!
//! Each module under [`experiments`] regenerates one experiment from
//! `EXPERIMENTS.md` (E1–E11): it runs the relevant algorithms over the
//! declared workloads and returns structured rows that the `report` binary
//! renders as markdown tables. The criterion benches under `benches/`
//! measure the throughput of the same code paths.

pub mod chaos;
pub mod dynamic;
pub mod families;
pub mod hotpath;
pub mod oracle;
pub mod scaling;
pub mod serve;
pub mod table;

pub mod experiments {
    //! One module per experiment id (see DESIGN.md §2).
    pub mod e10_ablations;
    pub mod e11_dynamic;
    pub mod e12_serve;
    pub mod e13_chaos;
    pub mod e1_random_order_unweighted;
    pub mod e2_random_arrival_weighted;
    pub mod e3_three_aug_paths;
    pub mod e4_fact13;
    pub mod e5_one_minus_eps;
    pub mod e6_streaming_model;
    pub mod e7_mpc_model;
    pub mod e8_memory;
    pub mod e9_layered_structure;
}
