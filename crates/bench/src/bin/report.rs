//! The experiment report generator.
//!
//! ```text
//! cargo run --release -p wmatch-bench --bin report            # all experiments
//! cargo run --release -p wmatch-bench --bin report -- e1 e5   # selected
//! cargo run --release -p wmatch-bench --bin report -- --quick # small sizes
//! ```
//!
//! Each section regenerates one experiment from `EXPERIMENTS.md` (E1–E13) and
//! prints it as markdown. `serve` is accepted as an alias for `e12` (the
//! marketplace serve benchmark, which writes `BENCH_serve.json`) and `chaos`
//! for `e13` (the fault-injection/recovery suite, which writes
//! `BENCH_chaos.json`).

use std::time::Instant;

use wmatch_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        // `serve` and `chaos` are the suite-style names of e12 and e13
        .map(|s| match s.as_str() {
            "serve" => "e12",
            "chaos" => "e13",
            other => other,
        })
        .collect();
    let run_all = selected.is_empty();

    type Runner = fn(bool) -> String;
    let experiments: Vec<(&str, Runner)> = vec![
        ("e1", e1_random_order_unweighted::run),
        ("e2", e2_random_arrival_weighted::run),
        ("e3", e3_three_aug_paths::run),
        ("e4", e4_fact13::run),
        ("e5", e5_one_minus_eps::run),
        ("e6", e6_streaming_model::run),
        ("e7", e7_mpc_model::run),
        ("e8", e8_memory::run),
        ("e9", e9_layered_structure::run),
        ("e10", e10_ablations::run),
        ("e11", e11_dynamic::run),
        ("e12", e12_serve::run),
        // e13 also writes BENCH_chaos.json (fault grid, crash recovery,
        // degraded throughput, worst-case ratios; WMATCH_CHAOS_GUARD=1
        // enables the CI guard)
        ("e13", e13_chaos::run),
        // hotpath also writes BENCH_hotpath.json (the recorded perf
        // trajectory; see WMATCH_BENCH_DIR)
        ("hotpath", wmatch_bench::hotpath::run),
        // scaling writes BENCH_parallel.json (worker-pool layers across
        // thread counts; WMATCH_SCALING_GUARD=1 enables the CI guard)
        ("scaling", wmatch_bench::scaling::run),
        // dynamic writes BENCH_dynamic.json (update-stream engine vs the
        // recompute-from-scratch baseline on the E11 workload families)
        ("dynamic", wmatch_bench::dynamic::run),
        // oracle writes BENCH_oracle.json (slack-array Hungarian vs the
        // dense oracles, cold vs warm; WMATCH_ORACLE_GUARD=1 enables the
        // warm-not-slower-than-cold CI guard)
        ("oracle", wmatch_bench::oracle::run),
    ];

    println!("# wmatch experiment report\n");
    println!(
        "mode: {}; selected: {}\n",
        if quick { "quick" } else { "full" },
        if run_all {
            "all".to_string()
        } else {
            selected.join(", ")
        }
    );
    for (id, f) in experiments {
        if run_all || selected.contains(&id) {
            let t = Instant::now();
            let section = f(quick);
            println!("{section}");
            println!(
                "_({id} regenerated in {:.1}s)_\n",
                t.elapsed().as_secs_f64()
            );
        }
    }
}
