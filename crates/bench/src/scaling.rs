//! Thread-scaling benchmarks: every parallel layer of the worker-pool
//! engine measured at several thread counts, with the determinism
//! contract asserted on the way.
//!
//! Three layers are timed (`report -- scaling` writes the results as
//! `BENCH_parallel.json`):
//!
//! * `class_sweep` — one round of Algorithm 3 on the persistent pool
//!   ([`wmatch_core::main_alg::improve_matching_offline_pooled`]): the
//!   per-class Algorithm 4 solves fan out, the cross-class commit stays
//!   sequential;
//! * `select` — the two-phase Algorithm 4 selection
//!   ([`wmatch_core::single_class::select_augmentations_pooled`]):
//!   parallel candidate scoring, sequential canonical-order commit;
//! * `mpc_round` — the MPC `Unw-Bip-Matching` box
//!   ([`wmatch_mpc::mpc_bipartite_mcm_pooled`]): simulated machines run
//!   their local computations concurrently, `exchange` is the barrier.
//!
//! Every measurement first checks that the layer's output is
//! **bit-identical** to its 1-thread run — a scaling number for a
//! nondeterministic result would be meaningless. The recorded
//! `hardware_threads` field gives the cores the measuring machine
//! actually had: speedups are bounded by it, so a 1-core CI box will
//! (correctly) report ≈1× while the determinism assertions still bite.
//!
//! Setting `WMATCH_SCALING_GUARD=1` turns the run into a regression
//! guard: it panics if the 4-thread (or the largest measured) class sweep
//! is more than 10% *slower* than 1-thread — catching pool-overhead
//! regressions without gating on hardware-dependent speedups.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::main_alg::{improve_matching_offline_pooled, MainAlgConfig};
use wmatch_core::single_class::{select_augmentations, select_augmentations_pooled};
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::{Edge, Graph, Matching, Scratch, Vertex, WorkerPool};
use wmatch_mpc::{mpc_bipartite_mcm_pooled, MpcConfig, MpcMcmConfig, MpcSimulator};

use crate::hotpath::{gnp_instance, greedy_matching, half_greedy_matching};

/// One measured row of `BENCH_parallel.json`.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Parallel layer (`class_sweep`, `select`, `mpc_round`).
    pub layer: &'static str,
    /// Instance family (`gnp`, `path`, `barrier`).
    pub family: &'static str,
    /// Vertex count of the instance.
    pub n: usize,
    /// Worker threads of the pool (caller included).
    pub threads: usize,
    /// Median ns per call at this thread count.
    pub median_ns: u128,
    /// `median_ns(threads = 1) / median_ns` for the same layer/family/n.
    pub speedup: f64,
    /// Timed iterations.
    pub iters: usize,
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    // lower median: with the quick mode's 2 iterations this takes the
    // better sample, so one scheduler hiccup cannot trip the CI guard
    samples[(samples.len() - 1) / 2]
}

/// The path family the sweeps share: alternating 9/10 weights so greedy
/// leaves planted 3-augmentations behind.
pub fn path_instance(n: usize) -> Graph {
    let weights: Vec<u64> = (0..n.saturating_sub(1))
        .map(|i| if i % 3 == 1 { 10 } else { 9 })
        .collect();
    generators::path_graph(&weights)
}

/// A class-sweep instance: graph plus an improvable starting matching.
fn sweep_instance(family: &'static str, n: usize) -> (Graph, Matching) {
    match family {
        "gnp" => {
            let g = gnp_instance(n, 7);
            let m = half_greedy_matching(&g);
            (g, m)
        }
        "path" => {
            let g = path_instance(n);
            let m = greedy_matching(&g);
            (g, m)
        }
        "barrier" => {
            let k = (n / 4).max(1);
            let g = generators::weighted_barrier_paths(k, 9);
            let middles = (0..k).map(|i| g.edge(3 * i + 1));
            let m = Matching::from_edges(4 * k, middles).expect("middles are disjoint");
            (g, m)
        }
        other => panic!("unknown family {other}"),
    }
}

/// One timed call of the `class_sweep` layer: a full Algorithm 3 round
/// (trials = 1) from the same matching and the same round randomness.
fn run_class_sweep(
    g: &Graph,
    m0: &Matching,
    cfg: &MainAlgConfig,
    pool: &mut WorkerPool,
) -> Matching {
    let mut m = m0.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = Scratch::new();
    improve_matching_offline_pooled(g, &mut m, cfg, &mut rng, &mut scratch, pool);
    m
}

/// A candidate walk as Algorithm 4 sees it: vertices plus edges.
type Walk = (Vec<Vertex>, Vec<Edge>);

/// The walk set of the `select` layer: every planted 3-augmentation of
/// the barrier family as one candidate walk.
fn select_instance(n: usize) -> (Graph, Matching, Vec<Walk>) {
    let (g, m) = sweep_instance("barrier", n);
    let k = (n / 4).max(1);
    let walks = (0..k as u32)
        .map(|i| {
            let vs: Vec<Vertex> = (0..4).map(|j| 4 * i + j).collect();
            let es: Vec<Edge> = (0..3).map(|j| g.edge((3 * i + j) as usize)).collect();
            (vs, es)
        })
        .collect();
    (g, m, walks)
}

/// The `mpc_round` layer instance: a random bipartite graph whose box run
/// is dominated by the per-machine scatter + coreset extraction rounds.
fn mpc_instance(n: usize) -> (Graph, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(17);
    let half = (n / 2).max(2);
    let p = (8.0 / n as f64).min(0.5);
    generators::random_bipartite(half, half, p, WeightModel::Unit, &mut rng)
}

struct LayerMeasurement {
    layer: &'static str,
    family: &'static str,
    n: usize,
    per_thread_ns: Vec<(usize, u128)>,
    iters: usize,
}

/// Runs the whole suite: every layer × family × n × thread count, with
/// the cross-thread determinism contract asserted before timing.
pub fn run_suite(quick: bool) -> Vec<ScalingRow> {
    let sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let iters = if quick { 2 } else { 3 };
    let mut measurements = Vec::new();

    for &n in sizes {
        // class_sweep on all three families
        for family in ["gnp", "path", "barrier"] {
            let (g, m0) = sweep_instance(family, n);
            let _ = g.csr(); // shared warm-up outside the timed region
                             // trials = 1 isolates one sweep; the pair cap bounds each
                             // class's layered-graph builds to a realistic per-round grain
            let cfg = MainAlgConfig::practical(0.25, 11)
                .with_trials(1)
                .with_max_pairs(24);
            let baseline = run_class_sweep(&g, &m0, &cfg, &mut WorkerPool::new(1));
            let mut per_thread_ns = Vec::new();
            for &t in threads {
                let mut pool = WorkerPool::new(t);
                let got = run_class_sweep(&g, &m0, &cfg, &mut pool);
                assert_eq!(
                    baseline.to_edges(),
                    got.to_edges(),
                    "class_sweep/{family}/n={n}: threads={t} diverged"
                );
                let ns = median_ns(iters, || {
                    std::hint::black_box(run_class_sweep(&g, &m0, &cfg, &mut pool));
                });
                per_thread_ns.push((t, ns));
            }
            measurements.push(LayerMeasurement {
                layer: "class_sweep",
                family,
                n,
                per_thread_ns,
                iters,
            });
        }

        // select on the barrier walk set (the family with a large,
        // regular candidate population)
        {
            let (_g, m, walks) = select_instance(n);
            let baseline = select_augmentations(&walks, &m, &mut Scratch::new());
            let mut per_thread_ns = Vec::new();
            for &t in threads {
                let mut pool = WorkerPool::new(t);
                let mut scratch = Scratch::new();
                let got = select_augmentations_pooled(&walks, &m, &mut scratch, &mut pool);
                assert_eq!(baseline, got, "select/barrier/n={n}: threads={t} diverged");
                let ns = median_ns(iters, || {
                    std::hint::black_box(select_augmentations_pooled(
                        &walks,
                        &m,
                        &mut scratch,
                        &mut pool,
                    ));
                });
                per_thread_ns.push((t, ns));
            }
            measurements.push(LayerMeasurement {
                layer: "select",
                family: "barrier",
                n,
                per_thread_ns,
                iters,
            });
        }

        // mpc_round on the gnp-derived bipartite instance
        {
            let (g, side) = mpc_instance(n);
            let mcm = MpcMcmConfig::for_delta(0.2, 23).with_max_iterations(3);
            let mpc_cfg = MpcConfig::new(8, 2 * g.edge_count().max(64));
            let run_box = |pool: &mut WorkerPool| {
                let mut sim = MpcSimulator::new(mpc_cfg);
                mpc_bipartite_mcm_pooled(&mut sim, g.edges().to_vec(), &side, &mcm, pool)
                    .expect("budgets are sized to fit")
            };
            let baseline = run_box(&mut WorkerPool::new(1));
            let mut per_thread_ns = Vec::new();
            for &t in threads {
                let mut pool = WorkerPool::new(t);
                let got = run_box(&mut pool);
                assert_eq!(
                    baseline.matching.to_edges(),
                    got.matching.to_edges(),
                    "mpc_round/gnp/n={n}: threads={t} diverged"
                );
                assert_eq!(baseline.rounds, got.rounds);
                let ns = median_ns(iters, || {
                    std::hint::black_box(run_box(&mut pool));
                });
                per_thread_ns.push((t, ns));
            }
            measurements.push(LayerMeasurement {
                layer: "mpc_round",
                family: "gnp",
                n,
                per_thread_ns,
                iters,
            });
        }
    }

    measurements
        .into_iter()
        .flat_map(|meas| {
            let base_ns = meas
                .per_thread_ns
                .iter()
                .find(|(t, _)| *t == 1)
                .map(|(_, ns)| *ns)
                .unwrap_or(0);
            meas.per_thread_ns
                .iter()
                .map(|&(threads, median_ns)| ScalingRow {
                    layer: meas.layer,
                    family: meas.family,
                    n: meas.n,
                    threads,
                    median_ns,
                    speedup: base_ns as f64 / median_ns.max(1) as f64,
                    iters: meas.iters,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Serializes the rows as `BENCH_parallel.json` (hand-rolled JSON: the
/// workspace builds offline, without serde). `hardware_threads` records
/// the cores of the measuring machine — the ceiling on any honest
/// speedup.
pub fn to_json(rows: &[ScalingRow], quick: bool) -> String {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"hardware_threads\": {hw},\n  \"unit\": \"ns_per_call_median\",\n  \"determinism\": \"asserted bit-identical across all measured thread counts\",\n  \"benches\": [\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"layer\": \"{}\", \"family\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"median_ns\": {}, \"speedup\": {:.3}, \"iters\": {}}}{}\n",
            r.layer,
            r.family,
            r.n,
            r.threads,
            r.median_ns,
            r.speedup,
            r.iters,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CI regression guard: the largest measured thread count of the
/// `class_sweep` layer must not be slower than 1-thread by more than
/// `tolerance` — a pool-overhead regression check, not a speedup gate.
/// Scoped to the gnp family (the one whose per-class work dominates the
/// dispatch cost); the millisecond-scale path/barrier sweeps sit below
/// the scheduler-noise floor on saturated or single-core machines.
/// Returns the offending descriptions.
pub fn guard_violations(rows: &[ScalingRow], tolerance: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let groups: std::collections::BTreeSet<(&str, usize)> = rows
        .iter()
        .filter(|r| r.layer == "class_sweep" && r.family == "gnp")
        .map(|r| (r.family, r.n))
        .collect();
    for (family, n) in groups {
        let group: Vec<&ScalingRow> = rows
            .iter()
            .filter(|r| r.layer == "class_sweep" && r.family == family && r.n == n)
            .collect();
        let base = group.iter().find(|r| r.threads == 1).map(|r| r.median_ns);
        let top = group.iter().max_by_key(|r| r.threads);
        if let (Some(base_ns), Some(top_row)) = (base, top) {
            if top_row.threads > 1 && top_row.median_ns as f64 > base_ns as f64 * (1.0 + tolerance)
            {
                bad.push(format!(
                    "class_sweep/{family}/n={n}: {} threads took {} ns vs {} ns at 1 thread \
                     (> {:.0}% regression)",
                    top_row.threads,
                    top_row.median_ns,
                    base_ns,
                    tolerance * 100.0
                ));
            }
        }
    }
    bad
}

/// Runs the suite, writes `BENCH_parallel.json` next to the working
/// directory (override with `WMATCH_BENCH_DIR`), renders the markdown
/// section, and applies the regression guard when
/// `WMATCH_SCALING_GUARD=1`.
pub fn run(quick: bool) -> String {
    let rows = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_parallel.json");
    std::fs::write(&path, to_json(&rows, quick)).expect("write BENCH_parallel.json");

    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = String::from("## Scaling — worker-pool layers across thread counts\n\n");
    out.push_str(&format!(
        "written: `{}` (hardware threads: {hw}; output asserted bit-identical across \
         all thread counts)\n\n",
        path.display()
    ));
    out.push_str("| layer | family | n | threads | median | speedup vs 1 thread |\n");
    out.push_str("|---|---|---:|---:|---:|---:|\n");
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.3} ms | {:.2}x |\n",
            r.layer,
            r.family,
            r.n,
            r.threads,
            r.median_ns as f64 / 1e6,
            r.speedup
        ));
    }

    if std::env::var("WMATCH_SCALING_GUARD").as_deref() == Ok("1") {
        let bad = guard_violations(&rows, 0.10);
        assert!(
            bad.is_empty(),
            "scaling regression guard failed:\n{}",
            bad.join("\n")
        );
        out.push_str(
            "\nRegression guard: passed (multi-thread class sweep within 10% of 1-thread).\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(threads: usize, median_ns: u128) -> ScalingRow {
        ScalingRow {
            layer: "class_sweep",
            family: "gnp",
            n: 100,
            threads,
            median_ns,
            speedup: 1.0,
            iters: 2,
        }
    }

    #[test]
    fn guard_accepts_flat_and_improving_runs() {
        assert!(guard_violations(&[row(1, 1000), row(4, 1050)], 0.10).is_empty());
        assert!(guard_violations(&[row(1, 1000), row(4, 400)], 0.10).is_empty());
    }

    #[test]
    fn guard_flags_regressions() {
        let bad = guard_violations(&[row(1, 1000), row(4, 1200)], 0.10);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("class_sweep/gnp"));
    }

    #[test]
    fn json_shape_is_parseable() {
        let j = to_json(&[row(1, 1000)], true);
        assert!(j.contains("\"hardware_threads\""));
        assert!(j.contains("\"layer\": \"class_sweep\""));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn tiny_suite_is_deterministic_and_labelled() {
        // a miniature end-to-end pass over the suite's own determinism
        // assertions (they panic on divergence)
        let (g, m0) = sweep_instance("barrier", 64);
        let cfg = MainAlgConfig::practical(0.25, 1).with_trials(1);
        let a = run_class_sweep(&g, &m0, &cfg, &mut WorkerPool::new(1));
        let b = run_class_sweep(&g, &m0, &cfg, &mut WorkerPool::new(4));
        assert_eq!(a.to_edges(), b.to_edges());
    }
}
