//! E13 — the chaos suite: the robustness layer of the dynamic serve path
//! measured under deterministic fault injection and adversarial
//! worst-case streams (ROADMAP 4c).
//!
//! `report -- chaos` (or `-- e13`) writes `BENCH_chaos.json` with four
//! sections, and — like every suite in this workspace — asserts the
//! correctness contracts **before** recording a single number, because a
//! latency figure for an engine that lost data is meaningless:
//!
//! 1. **Fault grid** — every fault class of the chaos harness, each with
//!    its contract asserted: poisoned ops are rejected typed and the
//!    surviving state is bit-identical to the run that never saw them
//!    (a twin injector predicts exactly which ops were poisoned);
//!    an injected worker panic commits every other overlap group and the
//!    victim re-runs through the sequential fallback, bit-identical to
//!    the fault-free run; bit-flipped matching entries trip the
//!    invariant sentinel, and healing goes through WAL recovery
//!    (bit-identical) or a warm rebuild epoch (re-certified floor).
//! 2. **Recovery latency** — crash the engine (`simulate_crash`) at
//!    several WAL snapshot cadences and time `recover()`; recovery must
//!    reproduce the pre-crash state bit-for-bit.
//! 3. **Degraded throughput** — the [`ServeDriver`] under a sustained
//!    poison storm: certified-path throughput vs the degraded
//!    (deferred-repair) path that keeps the service live.
//! 4. **Worst-case ratio** — each adversarial family replayed with
//!    checkpoints; the worst observed matching-weight ratio against the
//!    exact optimum (warm [`IncrementalCertifier`] on the bipartite
//!    families, blossom on the rest) must stay at or above the Fact 1.3
//!    ½ floor.
//!
//! With `WMATCH_CHAOS_GUARD=1` the suite additionally fails unless every
//! fault class actually fired and every contract flag committed true —
//! the CI hook that keeps the chaos harness honest.

use std::time::Instant;

use wmatch_dynamic::{
    silence_injected_panics, ChaosConfig, ChaosInjector, DynamicConfig, RetryPolicy, ServeDriver,
    ShardedMatcher, UpdateOp, WalConfig,
};
use wmatch_graph::aug_search::best_augmentation;
use wmatch_graph::exact::max_weight_matching;
use wmatch_oracle::IncrementalCertifier;

use crate::families::AdversarialFamily;

/// One fault class of the grid, with its asserted contract.
#[derive(Debug, Clone)]
pub struct FaultGridRow {
    /// Fault class label.
    pub class: &'static str,
    /// Ops replayed under injection.
    pub ops: usize,
    /// Faults the injector actually fired.
    pub injected: u64,
    /// Whether the surviving state matched the fault-free reference
    /// bit-for-bit (classes whose contract is bit-identity).
    pub bit_identical: bool,
    /// One-line description of the asserted contract.
    pub contract: &'static str,
}

/// One crash-recovery measurement at a WAL snapshot cadence.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// WAL snapshot cadence (ops per snapshot).
    pub cadence: usize,
    /// Ops applied before the crash.
    pub ops: usize,
    /// Snapshots the WAL captured.
    pub snapshots: u64,
    /// Journal-tail ops replayed by recovery.
    pub replayed_ops: usize,
    /// Wall-clock milliseconds of `recover()`.
    pub recovery_ms: f64,
    /// Whether recovery reproduced the pre-crash state bit-for-bit.
    pub bit_identical: bool,
}

/// Throughput of the serve driver under a sustained fault storm.
#[derive(Debug, Clone)]
pub struct DegradedRow {
    /// Workload label.
    pub family: &'static str,
    /// Ops served.
    pub ops: usize,
    /// Clean-run (no chaos) throughput, updates/s.
    pub clean_ups: f64,
    /// Under-storm throughput (certified + degraded batches), updates/s.
    pub storm_ups: f64,
    /// Storms that tripped degraded mode.
    pub storms: u64,
    /// Batches served through the degraded path.
    pub degraded_batches: u64,
    /// Malformed (poisoned) ops skipped typed.
    pub skipped_ops: u64,
    /// Deferred-repair flushes (each followed by a watchdog check).
    pub flushes: u64,
    /// Watchdog checks that found and healed a violation.
    pub watchdog_trips: u64,
}

/// Worst observed quality ratio of one adversarial family.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Adversarial family name.
    pub family: &'static str,
    /// Vertices.
    pub n: usize,
    /// Ops replayed.
    pub ops: usize,
    /// Oracle checkpoints taken.
    pub checkpoints: usize,
    /// Worst observed `w(M) / w(M*)` across the checkpoints.
    pub worst_ratio: f64,
    /// Which exact oracle certified the optimum.
    pub oracle: &'static str,
}

/// Everything `BENCH_chaos.json` records.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The asserted fault grid.
    pub fault_grid: Vec<FaultGridRow>,
    /// Crash-recovery latency per WAL cadence.
    pub recovery: Vec<RecoveryRow>,
    /// Serve-driver throughput under the fault storm.
    pub degraded: Vec<DegradedRow>,
    /// Worst-case quality ratios per adversarial family.
    pub ratios: Vec<RatioRow>,
}

/// Semantic state two engines must share to count as bit-identical.
fn state_of(eng: &ShardedMatcher) -> (Vec<wmatch_graph::Edge>, i128, String) {
    (
        eng.matching().to_edges(),
        eng.matching().weight(),
        format!("{:?}", eng.counters()),
    )
}

/// Fault class 1 — poisoned ops: replay per-op with a twin injector
/// predicting exactly which ops get poisoned. Every rejection must be
/// either a predicted poison or a *cascade* of one (a later delete of a
/// pair whose insert was poisoned away — which must fail identically on
/// the reference), and the surviving state must be bit-identical to a
/// reference run that skipped exactly the rejected ops.
fn grid_poison(n: usize, ops: &[UpdateOp]) -> FaultGridRow {
    let chaos_cfg = ChaosConfig::new()
        .with_seed(0xE13)
        .with_poison_every(7)
        .with_sentinel_every(0);
    let twin = ChaosInjector::new(chaos_cfg);
    let cfg = DynamicConfig::default().with_seed(5);

    let mut reference = ShardedMatcher::new(n, cfg, 4);
    let mut eng = ShardedMatcher::new(n, cfg, 4);
    eng.install_chaos(chaos_cfg);
    let mut rejected = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        match eng.apply_batch(&[op]) {
            Ok(_) => {
                assert!(
                    !twin.would_poison(i as u64),
                    "op {i}: the twin predicted poison but the engine accepted"
                );
                reference
                    .apply_batch(&[op])
                    .expect("accepted ops are well-formed for the reference too");
            }
            Err(e) => {
                assert!(!e.is_transient(), "poison must reject fatal, not transient");
                assert_eq!(e.applied, 0);
                rejected += 1;
                if !twin.would_poison(i as u64) {
                    // cascade: the op itself was clean, but it depends on
                    // a poisoned-away insert — the reference must reject
                    // it the same way
                    let r = reference.apply_batch(&[op]);
                    assert!(
                        r.is_err(),
                        "op {i}: rejected with neither a predicted poison nor a cascade"
                    );
                }
            }
        }
    }
    let injected = eng.chaos_counters().expect("chaos installed").poisoned_ops;
    assert!(injected > 0, "the poison cadence must actually fire");
    assert!(
        rejected >= injected,
        "every poisoned op was rejected typed ({rejected} rejections, {injected} poisons)"
    );
    let bit_identical = state_of(&eng) == state_of(&reference);
    assert!(
        bit_identical,
        "poison grid: survivors diverged from the skip-the-rejected reference run"
    );
    FaultGridRow {
        class: "poisoned-ops",
        ops: ops.len(),
        injected,
        bit_identical,
        contract:
            "typed rejection (poison or cascade); survivors bit-identical to the skipping run",
    }
}

/// Fault class 2 — worker panics: every batch panics one overlap group
/// mid-ball-repair; the batch must commit the others, re-run the victim
/// sequentially, and stay bit-identical to the fault-free run.
fn grid_panic(n: usize, ops: &[UpdateOp]) -> FaultGridRow {
    let cfg = DynamicConfig::default().with_seed(5).with_threads(4);
    let mut reference = ShardedMatcher::new(n, cfg, 4);
    reference.apply_all(ops).expect("well-formed stream");

    let mut eng = ShardedMatcher::new(n, cfg, 4);
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(0xE13)
            .with_panic_every(1)
            .with_sentinel_every(0),
    );
    eng.apply_all(ops)
        .expect("panics are isolated, not surfaced");
    let counters = eng.chaos_counters().expect("chaos installed");
    assert!(counters.worker_panics > 0, "the panic cadence must fire");
    assert!(
        eng.groups_fallback() >= counters.worker_panics,
        "every panicked group re-ran through the sequential fallback"
    );
    let bit_identical = state_of(&eng) == state_of(&reference);
    assert!(
        bit_identical,
        "panic grid: a panicked group corrupted the committed state"
    );
    FaultGridRow {
        class: "worker-panics",
        ops: ops.len(),
        injected: counters.worker_panics,
        bit_identical,
        contract: "panicked group re-run sequentially; batch bit-identical to fault-free",
    }
}

/// Fault class 3 — bit flips with a WAL: corrupted matching entries trip
/// the sentinel, healing goes through WAL recovery, and the durable
/// state stays exactly the clean run's.
fn grid_bitflip_wal(n: usize, ops: &[UpdateOp]) -> FaultGridRow {
    let cfg = DynamicConfig::default().with_seed(5).with_threads(2);
    let mut reference = ShardedMatcher::new(n, cfg, 4);
    reference.apply_all(ops).expect("well-formed stream");

    let mut eng = ShardedMatcher::new(n, cfg, 4);
    eng.enable_wal(WalConfig::new().with_snapshot_every(64));
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(0xE13)
            .with_bitflip_every(2)
            .with_sentinel_every(1),
    );
    // storm threshold pinned off: this grid row asserts the *certified*
    // path's bit-identity contract, and degraded mode intentionally
    // trades bit-identity for liveness (its contract is the watchdog's
    // re-certified floor, asserted by the degraded row instead)
    let mut driver = ServeDriver::new(
        RetryPolicy::default()
            .with_base_backoff(std::time::Duration::from_micros(10))
            .with_max_retries(8)
            .with_storm_threshold(u32::MAX),
    );
    for chunk in ops.chunks(50) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);
    let counters = eng.chaos_counters().expect("chaos installed");
    assert!(counters.bit_flips > 0, "the flip cadence must fire");
    assert!(
        counters.quarantines > 0,
        "the sentinel must catch the flips"
    );
    assert_eq!(
        driver.stats().skipped_ops,
        0,
        "no op may be lost to healing"
    );
    // the WAL's durable state is the clean run: recovery proves it
    eng.recover().expect("a WAL was enabled");
    let bit_identical = state_of(&eng) == state_of(&reference);
    assert!(
        bit_identical,
        "bitflip/WAL grid: healing diverged from the uninterrupted clean run"
    );
    FaultGridRow {
        class: "bit-flips (WAL heal)",
        ops: ops.len(),
        injected: counters.bit_flips,
        bit_identical,
        contract: "sentinel quarantine -> WAL recovery; bit-identical to the clean run",
    }
}

/// Fault class 4 — bit flips without a WAL: the sentinel quarantines and
/// heals via a warm rebuild epoch; the healed matching must re-certify
/// the Fact 1.3 floor against an exact blossom solve.
fn grid_bitflip_rebuild(n: usize, ops: &[UpdateOp]) -> FaultGridRow {
    let cfg = DynamicConfig::default().with_seed(5);
    let mut eng = ShardedMatcher::new(n, cfg, 2);
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(0xE13)
            .with_bitflip_every(2)
            .with_sentinel_every(1),
    );
    let mut driver = ServeDriver::new(
        RetryPolicy::default().with_base_backoff(std::time::Duration::from_micros(10)),
    );
    for chunk in ops.chunks(50) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);
    let counters = eng.chaos_counters().expect("chaos installed");
    assert!(counters.bit_flips > 0, "the flip cadence must fire");
    assert!(
        counters.quarantines > 0,
        "the sentinel must catch the flips"
    );
    assert_eq!(
        driver.stats().skipped_ops,
        0,
        "no op may be lost to healing"
    );
    // the last batch's post-commit flip may still be outstanding — heal
    // it the same way the sentinel would at the next batch boundary
    if let Some(shard) = eng.sentinel_violation() {
        eng.quarantine_heal(shard);
    }
    let snap = eng.graph().snapshot();
    eng.matching()
        .validate(Some(&snap))
        .expect("the healed matching must validate against the live graph");
    assert!(
        best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
        "bitflip/rebuild grid: healing left a positive short augmentation"
    );
    let opt = max_weight_matching(&snap).weight();
    assert!(
        eng.matching().weight() * 2 >= opt,
        "bitflip/rebuild grid: healed weight {} below half of optimum {opt}",
        eng.matching().weight()
    );
    FaultGridRow {
        class: "bit-flips (rebuild heal)",
        ops: ops.len(),
        injected: counters.bit_flips,
        bit_identical: false,
        contract: "sentinel quarantine -> warm rebuild; Fact 1.3 half floor re-certified",
    }
}

/// Times crash recovery at one WAL snapshot cadence.
fn recovery_row(n: usize, ops: &[UpdateOp], cadence: usize) -> RecoveryRow {
    let cfg = DynamicConfig::default().with_seed(5).with_threads(2);
    let mut eng = ShardedMatcher::new(n, cfg, 4);
    eng.enable_wal(WalConfig::new().with_snapshot_every(cadence));
    eng.apply_all(ops).expect("well-formed stream");
    let before = state_of(&eng);
    let wal = eng.wal_stats().expect("a WAL is enabled");
    eng.simulate_crash();
    let t = Instant::now();
    let report = eng.recover().expect("a WAL was enabled");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let bit_identical = state_of(&eng) == before;
    assert!(
        bit_identical,
        "recovery at cadence {cadence} diverged from the pre-crash state"
    );
    RecoveryRow {
        cadence,
        ops: ops.len(),
        snapshots: wal.snapshots,
        replayed_ops: report.replayed_ops,
        recovery_ms,
        bit_identical,
    }
}

/// Measures serve-driver throughput with and without the poison storm.
fn degraded_row(family: &'static str, n: usize, ops: &[UpdateOp]) -> DegradedRow {
    let cfg = DynamicConfig::default().with_seed(5).with_threads(2);
    // clean baseline
    let mut clean_eng = ShardedMatcher::new(n, cfg, 4);
    let t = Instant::now();
    clean_eng.apply_all(ops).expect("well-formed stream");
    let clean_ups = ops.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);

    // the storm: heavy poison, driver policy tuned to degrade quickly
    let mut eng = ShardedMatcher::new(n, cfg, 4);
    eng.install_chaos(
        ChaosConfig::new()
            .with_seed(0xE13)
            .with_poison_every(4)
            .with_sentinel_every(0),
    );
    let mut driver = ServeDriver::new(
        RetryPolicy::default()
            .with_base_backoff(std::time::Duration::from_micros(10))
            .with_storm_threshold(2)
            .with_max_stale_ops(256)
            .with_recovery_streak(4),
    );
    let t = Instant::now();
    for chunk in ops.chunks(64) {
        driver.serve(&mut eng, chunk);
    }
    driver.finish(&mut eng);
    let storm_ups = ops.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);
    let d = driver.stats();
    assert!(d.storms > 0, "the storm must trip degraded mode");
    assert_eq!(eng.deferred_repairs(), 0, "finish() flushes all staleness");
    // the survivors still satisfy the engine's certificate invariant
    let snap = eng.graph().snapshot();
    eng.matching()
        .validate(Some(&snap))
        .expect("valid matching");
    assert!(
        best_augmentation(&snap, eng.matching(), cfg.max_len).is_none(),
        "degraded row: the watchdog left a positive short augmentation"
    );
    DegradedRow {
        family,
        ops: ops.len(),
        clean_ups,
        storm_ups,
        storms: d.storms,
        degraded_batches: d.degraded_batches,
        skipped_ops: d.skipped_ops,
        flushes: d.flushes,
        watchdog_trips: d.watchdog_trips,
    }
}

/// Replays one adversarial family with exact-oracle checkpoints and
/// records the worst observed quality ratio, asserting the ½ floor.
fn ratio_row(family: AdversarialFamily, n: usize, ops: usize, checkpoint: usize) -> RatioRow {
    let w = family.build(n, ops, 0xE13);
    let cfg = DynamicConfig::default().with_seed(5).with_threads(2);
    // delete-matching waves start from a non-empty base graph
    let mut eng =
        ShardedMatcher::from_graph(&w.initial, cfg, 4).expect("generated base graph is valid");
    let side = family.bipartite_side(w.n);
    let mut cert = side.as_ref().map(|s| IncrementalCertifier::new(s.clone()));
    let mut worst = f64::INFINITY;
    let mut checkpoints = 0usize;
    for chunk in w.ops.chunks(checkpoint) {
        eng.apply_all(chunk).expect("well-formed stream");
        let snap = eng.graph().snapshot();
        let opt = match cert.as_mut() {
            Some(c) => {
                c.certify(&snap)
                    .expect("the family is bipartite by construction")
                    .optimum
            }
            None => max_weight_matching(&snap).weight(),
        };
        let ratio = if opt == 0 {
            1.0
        } else {
            eng.matching().weight() as f64 / opt as f64
        };
        assert!(
            ratio >= 0.5 - 1e-9,
            "{}: checkpoint ratio {ratio} below the Fact 1.3 half floor",
            family.name()
        );
        worst = worst.min(ratio);
        checkpoints += 1;
    }
    RatioRow {
        family: family.name(),
        n: w.n,
        ops: w.ops.len(),
        checkpoints,
        worst_ratio: if worst.is_finite() { worst } else { 1.0 },
        oracle: if side.is_some() {
            "incremental-hungarian (warm)"
        } else {
            "blossom (exact, general)"
        },
    }
}

/// Runs the whole chaos suite at `quick` or full sizes.
pub fn run_suite(quick: bool) -> ChaosReport {
    silence_injected_panics();
    let (gn, gops) = if quick { (96, 3_000) } else { (256, 20_000) };
    let storm = AdversarialFamily::HubStorm.build(gn, gops, 0xE13);

    let fault_grid = vec![
        grid_poison(storm.n, &storm.ops),
        grid_panic(storm.n, &storm.ops),
        grid_bitflip_wal(storm.n, &storm.ops),
        grid_bitflip_rebuild(storm.n, &storm.ops),
    ];

    let (rn, rops) = if quick {
        (512, 20_000)
    } else {
        (4_096, 200_000)
    };
    let recovery_stream = AdversarialFamily::BoundaryOscillation.build(rn, rops, 0xE13);
    let recovery = [64usize, 1_024, 16_384]
        .iter()
        .map(|&c| recovery_row(recovery_stream.n, &recovery_stream.ops, c))
        .collect();

    let degraded = vec![degraded_row(
        AdversarialFamily::HubStorm.name(),
        storm.n,
        &storm.ops,
    )];

    // oracle-feasible sizes: the warm bipartite certifier carries the
    // larger rows, the O(n³) blossom only the small general one
    let (bn, bops, bcheck) = if quick {
        (96, 2_000, 500)
    } else {
        (192, 8_000, 1_000)
    };
    let (xn, xops, xcheck) = if quick {
        (48, 1_000, 250)
    } else {
        (96, 3_000, 500)
    };
    let ratios = vec![
        ratio_row(AdversarialFamily::BoundaryOscillation, bn, bops, bcheck),
        ratio_row(AdversarialFamily::HubStorm, bn, bops, bcheck),
        ratio_row(AdversarialFamily::DeleteMatchingWaves, xn, xops, xcheck),
    ];

    let report = ChaosReport {
        fault_grid,
        recovery,
        degraded,
        ratios,
    };
    if std::env::var("WMATCH_CHAOS_GUARD").as_deref() == Ok("1") {
        assert_chaos_guard(&report);
    }
    report
}

/// The CI guard: every fault class fired, every bit-identity contract
/// committed true, and the worst observed ratio never dipped below ½.
fn assert_chaos_guard(report: &ChaosReport) {
    for row in &report.fault_grid {
        assert!(
            row.injected > 0,
            "chaos guard: fault class {:?} never fired",
            row.class
        );
    }
    for row in &report.fault_grid {
        if row.class != "bit-flips (rebuild heal)" {
            assert!(
                row.bit_identical,
                "chaos guard: {:?} lost bit-identity",
                row.class
            );
        }
    }
    for row in &report.recovery {
        assert!(
            row.bit_identical,
            "chaos guard: recovery at cadence {} lost bit-identity",
            row.cadence
        );
    }
    for row in &report.degraded {
        assert!(
            row.storm_ups > 0.0 && row.storms > 0,
            "chaos guard: the {} storm row did not exercise degraded mode",
            row.family
        );
    }
    for row in &report.ratios {
        assert!(
            row.worst_ratio >= 0.5 - 1e-9,
            "chaos guard: {} worst ratio {} below the half floor",
            row.family,
            row.worst_ratio
        );
    }
}

/// Serializes the report as `BENCH_chaos.json` (hand-rolled JSON: the
/// workspace builds offline, without serde).
pub fn to_json(report: &ChaosReport, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"policy\": \"all fault-grid and floor contracts asserted before timing; chaos decisions are seed-keyed and exactly reproducible\",\n  \"floor\": \"Fact 1.3 half floor at the default max_len 3\",\n",
        if quick { "quick" } else { "full" },
    ));
    out.push_str("  \"fault_grid\": [\n");
    for (i, r) in report.fault_grid.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"ops\": {}, \"injected\": {}, \"bit_identical\": {}, \"contract\": \"{}\"}}{}\n",
            r.class,
            r.ops,
            r.injected,
            r.bit_identical,
            r.contract,
            if i + 1 < report.fault_grid.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in report.recovery.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cadence\": {}, \"ops\": {}, \"snapshots\": {}, \"replayed_ops\": {}, \"recovery_ms\": {:.3}, \"bit_identical\": {}}}{}\n",
            r.cadence,
            r.ops,
            r.snapshots,
            r.replayed_ops,
            r.recovery_ms,
            r.bit_identical,
            if i + 1 < report.recovery.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"degraded\": [\n");
    for (i, r) in report.degraded.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"ops\": {}, \"clean_updates_per_sec\": {:.1}, \"storm_updates_per_sec\": {:.1}, \"storms\": {}, \"degraded_batches\": {}, \"skipped_ops\": {}, \"flushes\": {}, \"watchdog_trips\": {}}}{}\n",
            r.family,
            r.ops,
            r.clean_ups,
            r.storm_ups,
            r.storms,
            r.degraded_batches,
            r.skipped_ops,
            r.flushes,
            r.watchdog_trips,
            if i + 1 < report.degraded.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"worst_case_ratio\": [\n");
    for (i, r) in report.ratios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"ops\": {}, \"checkpoints\": {}, \"worst_ratio\": {:.4}, \"oracle\": \"{}\"}}{}\n",
            r.family,
            r.n,
            r.ops,
            r.checkpoints,
            r.worst_ratio,
            r.oracle,
            if i + 1 < report.ratios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the suite, writes `BENCH_chaos.json` (next to the working
/// directory; override with `WMATCH_BENCH_DIR`), and renders the
/// markdown section.
pub fn run(quick: bool) -> String {
    let t0 = Instant::now();
    let report = run_suite(quick);
    let dir = std::env::var("WMATCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_chaos.json");
    std::fs::write(&path, to_json(&report, quick)).expect("write BENCH_chaos.json");

    let mut out = String::from(
        "## E13 — chaos: fault injection, crash recovery, and the adversarial worst case\n\n",
    );
    out.push_str(&format!(
        "written: `{}` (every fault-grid contract asserted before timing)\n\n",
        path.display()
    ));
    out.push_str("| fault class | ops | injected | bit-identical | contract |\n");
    out.push_str("|---|---:|---:|---|---|\n");
    for r in &report.fault_grid {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.class, r.ops, r.injected, r.bit_identical, r.contract
        ));
    }
    out.push_str("\n| WAL cadence | ops | snapshots | replayed | recovery ms |\n");
    out.push_str("|---:|---:|---:|---:|---:|\n");
    for r in &report.recovery {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} |\n",
            r.cadence, r.ops, r.snapshots, r.replayed_ops, r.recovery_ms
        ));
    }
    out.push_str("\n| storm workload | ops | clean updates/s | storm updates/s | storms | degraded batches | skipped | watchdog trips |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in &report.degraded {
        out.push_str(&format!(
            "| {} | {} | {:.0} | {:.0} | {} | {} | {} | {} |\n",
            r.family,
            r.ops,
            r.clean_ups,
            r.storm_ups,
            r.storms,
            r.degraded_batches,
            r.skipped_ops,
            r.watchdog_trips
        ));
    }
    out.push_str("\n| adversarial family | n | ops | checkpoints | worst ratio | oracle |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    for r in &report.ratios {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.4} | {} |\n",
            r.family, r.n, r.ops, r.checkpoints, r.worst_ratio, r.oracle
        ));
    }
    out.push_str(&format!(
        "\nShape: the fault grid is the contract, not the measurement — poisoned ops reject \
         typed with the survivors bit-identical to the never-poisoned run, panicked workers \
         lose nothing, and corrupted matching entries heal through the WAL (bit-identical) \
         or a warm rebuild (floor re-certified). Recovery latency scales with the journal \
         tail, so the cadence column is the knob: snapshot often to recover fast, rarely to \
         snapshot cheap. The degraded row is the serve driver keeping a poisoned stream \
         live; the worst-case ratios hold the Fact 1.3 ½ floor on streams built to break \
         it. (suite ran in {:.1}s)\n",
        t0.elapsed().as_secs_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable() {
        let report = ChaosReport {
            fault_grid: vec![FaultGridRow {
                class: "poisoned-ops",
                ops: 100,
                injected: 7,
                bit_identical: true,
                contract: "typed rejection",
            }],
            recovery: vec![RecoveryRow {
                cadence: 64,
                ops: 100,
                snapshots: 2,
                replayed_ops: 36,
                recovery_ms: 1.5,
                bit_identical: true,
            }],
            degraded: vec![DegradedRow {
                family: "hub-storm",
                ops: 100,
                clean_ups: 1000.0,
                storm_ups: 400.0,
                storms: 2,
                degraded_batches: 5,
                skipped_ops: 7,
                flushes: 3,
                watchdog_trips: 0,
            }],
            ratios: vec![RatioRow {
                family: "boundary-oscillation",
                n: 96,
                ops: 2000,
                checkpoints: 4,
                worst_ratio: 0.8123,
                oracle: "incremental-hungarian (warm)",
            }],
        };
        let j = to_json(&report, true);
        assert!(j.contains("\"fault_grid\""));
        assert!(j.contains("\"recovery\""));
        assert!(j.contains("\"worst_case_ratio\""));
        assert!(j.contains("\"worst_ratio\": 0.8123"));
        assert!(j.contains("\"recovery_ms\": 1.500"));
        assert!(j.contains("\"bit_identical\": true"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_chaos_guard(&report);
    }

    #[test]
    fn guard_trips_on_silent_fault_class() {
        let report = ChaosReport {
            fault_grid: vec![FaultGridRow {
                class: "worker-panics",
                ops: 100,
                injected: 0, // never fired
                bit_identical: true,
                contract: "c",
            }],
            recovery: vec![],
            degraded: vec![],
            ratios: vec![],
        };
        let r = std::panic::catch_unwind(|| assert_chaos_guard(&report));
        assert!(r.is_err(), "a silent fault class must trip the guard");
    }

    #[test]
    fn tiny_suite_end_to_end() {
        // miniature pass over the whole plumbing (not the sizes)
        silence_injected_panics();
        let storm = AdversarialFamily::HubStorm.build(48, 600, 1);
        let rows = vec![
            grid_poison(storm.n, &storm.ops),
            grid_panic(storm.n, &storm.ops),
            grid_bitflip_wal(storm.n, &storm.ops),
            grid_bitflip_rebuild(storm.n, &storm.ops),
        ];
        for r in &rows {
            assert!(r.injected > 0, "{}: never fired", r.class);
        }
        let rec = recovery_row(storm.n, &storm.ops, 100);
        assert!(rec.bit_identical && rec.replayed_ops > 0);
        let deg = degraded_row("hub-storm", storm.n, &storm.ops);
        assert!(deg.storms > 0 && deg.storm_ups > 0.0);
        let ratio = ratio_row(AdversarialFamily::DeleteMatchingWaves, 32, 300, 100);
        assert!(ratio.worst_ratio >= 0.5 - 1e-9);
        assert!(ratio.checkpoints > 0);
    }
}
