//! Minimal markdown table rendering for the report binary.

/// A markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as github-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `0.xxxx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| name      | value |\n"));
        assert!(md.contains("| long-name | 2     |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["only".into()]);
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(0.50644), "0.5064");
    }
}
