//! Instance generators: random families, adversarial families, and the
//! exact graphs from the paper's figures.
//!
//! All randomized generators take an explicit RNG so experiments are
//! reproducible from a seed.

use rand::Rng;

use crate::edge::{Edge, Vertex};
use crate::graph::Graph;
use crate::matching::Matching;

/// How edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights are 1 (unweighted instances).
    Unit,
    /// Uniform integer in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// `base^c` for a uniformly random class `c in [0, classes)`: produces
    /// the geometric weight-class structure the paper's algorithms group by.
    GeometricClasses {
        /// Number of classes.
        classes: u32,
        /// Base of the geometric progression (≥ 2).
        base: u64,
    },
    /// Uniform integer in `[1, n^exponent]` — the paper's `poly(n)` weight
    /// regime.
    Polynomial {
        /// The exponent of `n`.
        exponent: u32,
    },
}

impl WeightModel {
    /// Samples one weight for a graph on `n` vertices.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> u64 {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            WeightModel::GeometricClasses { classes, base } => {
                let c = rng.gen_range(0..classes.max(1));
                base.max(2).saturating_pow(c)
            }
            WeightModel::Polynomial { exponent } => {
                let hi = (n.max(2) as u64).saturating_pow(exponent).max(1);
                rng.gen_range(1..=hi)
            }
        }
    }
}

/// Erdős–Rényi graph `G(n, p)` with weights from `model`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, model: WeightModel, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let w = model.sample(rng, n);
                g.add_edge(u as Vertex, v as Vertex, w);
            }
        }
    }
    g
}

/// Random bipartite graph: sides `0..nl` and `nl..nl+nr`, each cross pair
/// present with probability `p`. Returns the graph and the side labels
/// (`false` = left).
pub fn random_bipartite<R: Rng + ?Sized>(
    nl: usize,
    nr: usize,
    p: f64,
    model: WeightModel,
    rng: &mut R,
) -> (Graph, Vec<bool>) {
    let n = nl + nr;
    let mut g = Graph::new(n);
    for u in 0..nl {
        for v in nl..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let w = model.sample(rng, n);
                g.add_edge(u as Vertex, v as Vertex, w);
            }
        }
    }
    let side = (0..n).map(|v| v >= nl).collect();
    (g, side)
}

/// Complete graph `K_n` with weights from `model`.
pub fn complete<R: Rng + ?Sized>(n: usize, model: WeightModel, rng: &mut R) -> Graph {
    gnp(n, 1.0, model, rng)
}

/// A path on `weights.len() + 1` vertices with the given edge weights, in
/// path order.
pub fn path_graph(weights: &[u64]) -> Graph {
    let n = weights.len() + 1;
    let mut g = Graph::new(n);
    for (i, &w) in weights.iter().enumerate() {
        g.add_edge(i as Vertex, (i + 1) as Vertex, w);
    }
    g
}

/// A cycle on `weights.len()` vertices (≥ 3 edges) with the given edge
/// weights in cycle order.
///
/// # Panics
///
/// Panics if fewer than 3 weights are given.
pub fn cycle_graph(weights: &[u64]) -> Graph {
    let n = weights.len();
    assert!(n >= 3, "a cycle needs at least 3 edges");
    let mut g = Graph::new(n);
    for (i, &w) in weights.iter().enumerate() {
        g.add_edge(i as Vertex, ((i + 1) % n) as Vertex, w);
    }
    g
}

/// The paper's 4-cycle with weights (3, 4, 3, 4) (Section 1.1.2): the
/// weight-3 edges form a perfect matching of weight 6 that can only be
/// improved via an augmenting *cycle* (optimum 8).
pub fn four_cycle_3434() -> (Graph, Matching) {
    let g = cycle_graph(&[3, 4, 3, 4]);
    let m = Matching::from_edges(4, [g.edge(0), g.edge(2)]).expect("disjoint");
    (g, m)
}

/// The generalized 4-cycle with weights `(q, q+1, q, q+1)` — the paper's
/// `(2, 2+ε, 2, 2+ε)` example with `ε = 1/q` after scaling by `q`.
pub fn four_cycle_eps(q: u64) -> (Graph, Matching) {
    let g = cycle_graph(&[q, q + 1, q, q + 1]);
    let m = Matching::from_edges(4, [g.edge(0), g.edge(2)]).expect("disjoint");
    (g, m)
}

/// `k` vertex-disjoint 3-edge paths with unit weights: the classic family on
/// which greedy gets stuck at ratio ~1/2 when the middle edge arrives first.
pub fn disjoint_paths3(k: usize) -> Graph {
    let mut g = Graph::new(4 * k);
    for i in 0..k {
        let b = (4 * i) as Vertex;
        g.add_edge(b, b + 1, 1);
        g.add_edge(b + 1, b + 2, 1);
        g.add_edge(b + 2, b + 3, 1);
    }
    g
}

/// `k` vertex-disjoint weighted 3-edge paths `(w, w+1, w)`: greedy-style and
/// local-ratio algorithms lock onto the heavier middle edge (weight `w+1`)
/// while the optimum takes the two outer edges (weight `2w`): ratio →
/// `(w+1)/(2w)` ≈ 1/2.
pub fn weighted_barrier_paths(k: usize, w: u64) -> Graph {
    let mut g = Graph::new(4 * k);
    for i in 0..k {
        let b = (4 * i) as Vertex;
        g.add_edge(b, b + 1, w);
        g.add_edge(b + 1, b + 2, w + 1);
        g.add_edge(b + 2, b + 3, w);
    }
    g
}

/// The exact graph of the paper's **Figure 1**: matching `M = {{c,d}}` of
/// weight 5, optimum `{{a,c},{d,f}}` of weight 8.
///
/// Vertex map: a=0, b=1, c=2, d=3, e=4, f=5. Returns the graph and the
/// initial matching.
pub fn fig1_graph() -> (Graph, Matching) {
    let mut g = Graph::new(6);
    g.add_edge(2, 3, 5); // {c,d} = 5 (matched)
    g.add_edge(0, 2, 4); // {a,c} = 4
    g.add_edge(1, 2, 2); // {b,c} = 2
    g.add_edge(3, 4, 2); // {d,e} = 2
    g.add_edge(3, 5, 4); // {d,f} = 4
    let m = Matching::from_edges(6, [g.edge(0)]).expect("single edge");
    (g, m)
}

/// A reconstruction of the paper's **Figure 2** (the exact weight placement
/// of two of the ten labels is ambiguous in the figure; this reconstruction
/// satisfies every property the text asserts about it — see the tests).
///
/// Vertex map: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7.
/// `M0 = {{a,b}=10, {c,d}=13, {e,f}=1, {g,h}=0}` (solid edges); dashed edges
/// `{a,d}=20, {c,f}=10, {d,e}=8, {e,h}=2, {f,h}=1, {e,g}=1` arrive later.
/// Returns `(graph, m0, dashed_edges)`.
pub fn fig2_graph() -> (Graph, Matching, Vec<Edge>) {
    let mut g = Graph::new(8);
    let m0_edges = [
        Edge::new(0, 1, 10), // {a,b}
        Edge::new(2, 3, 13), // {c,d}
        Edge::new(4, 5, 1),  // {e,f}
        Edge::new(6, 7, 0),  // {g,h}
    ];
    let dashed = vec![
        Edge::new(0, 3, 20), // {a,d}
        Edge::new(2, 5, 10), // {c,f}
        Edge::new(3, 4, 8),  // {d,e}
        Edge::new(4, 7, 2),  // {e,h}
        Edge::new(5, 7, 1),  // {f,h}
        Edge::new(4, 6, 1),  // {e,g}
    ];
    for e in m0_edges.iter().chain(dashed.iter()) {
        g.add_edge(e.u, e.v, e.weight);
    }
    let m0 = Matching::from_edges(8, m0_edges).expect("disjoint");
    (g, m0, dashed)
}

/// The "incorrect layered graph" example from Section 1.1.2 (the 6-vertex
/// path `a-b-c-d-e-f` with weights 1,2,2,... whose layered graph without the
/// bipartition trick contains a non-simple bold path).
///
/// Vertex map: a=0..f=5; matched edges `{a,b}=1, {c,d}=1, {e,f}=1` wait —
/// in the paper `{a,b},{c,d},{e,f}` have weight 1 and `{b,c},{d,e}` have
/// weight 2. Returns `(graph, matching)`.
pub fn nonsimple_path_example() -> (Graph, Matching) {
    let g = path_graph(&[1, 2, 1, 2, 1]);
    let m = Matching::from_edges(6, [g.edge(0), g.edge(2), g.edge(4)]).expect("disjoint");
    (g, m)
}

/// Plants `k` disjoint 3-augmenting paths over a matching of `total`
/// matched edges (so `β = k / total`).
///
/// For each of the `total` matched edges `(u_i, v_i)`, vertices `a_i` and
/// `b_i` exist; for the first `k` of them the edges `(a_i, u_i)` and
/// `(v_i, b_i)` are present (forming the planted path `a-u-v-b`).
/// Returns `(graph, matching, planted_wing_edges)`.
///
/// # Panics
///
/// Panics if `k > total`.
pub fn planted_3aug_paths(k: usize, total: usize) -> (Graph, Matching, Vec<Edge>) {
    assert!(k <= total, "cannot plant more paths than matched edges");
    let mut g = Graph::new(4 * total);
    let mut m_edges = Vec::new();
    let mut wings = Vec::new();
    for i in 0..total {
        let a = (4 * i) as Vertex;
        let (u, v, b) = (a + 1, a + 2, a + 3);
        g.add_edge(u, v, 1);
        m_edges.push(Edge::new(u, v, 1));
        if i < k {
            g.add_edge(a, u, 1);
            g.add_edge(v, b, 1);
            wings.push(Edge::new(a, u, 1));
            wings.push(Edge::new(v, b, 1));
        }
    }
    let m = Matching::from_edges(4 * total, m_edges).expect("disjoint");
    (g, m, wings)
}

/// A union of `k` disjoint even cycles of length `2len`, alternating weights
/// `(lo, hi)`: the `lo` edges form a perfect matching; optimum takes the
/// `hi` edges and is reachable only through augmenting cycles.
pub fn alternating_cycles(k: usize, len: usize, lo: u64, hi: u64) -> (Graph, Matching) {
    assert!(len >= 2, "need cycles of length >= 4");
    let n = 2 * len * k;
    let mut g = Graph::new(n);
    let mut m_edges = Vec::new();
    for c in 0..k {
        let base = (2 * len * c) as Vertex;
        for i in 0..(2 * len) {
            let u = base + i as Vertex;
            let v = base + ((i + 1) % (2 * len)) as Vertex;
            let w = if i % 2 == 0 { lo } else { hi };
            g.add_edge(u, v, w);
            if i % 2 == 0 {
                m_edges.push(Edge::new(u, v, w));
            }
        }
    }
    let m = Matching::from_edges(n, m_edges).expect("disjoint");
    (g, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weight_models_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(WeightModel::Unit.sample(&mut rng, 100), 1);
            let w = WeightModel::Uniform { lo: 3, hi: 9 }.sample(&mut rng, 100);
            assert!((3..=9).contains(&w));
            let w = WeightModel::GeometricClasses {
                classes: 4,
                base: 2,
            }
            .sample(&mut rng, 100);
            assert!([1, 2, 4, 8].contains(&w));
            let w = WeightModel::Polynomial { exponent: 2 }.sample(&mut rng, 10);
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gnp(10, 0.0, WeightModel::Unit, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, WeightModel::Unit, &mut rng);
        assert_eq!(full.edge_count(), 45);
        assert!(full.is_simple());
    }

    #[test]
    fn bipartite_respects_sides() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, side) =
            random_bipartite(6, 8, 0.5, WeightModel::Uniform { lo: 1, hi: 5 }, &mut rng);
        assert_eq!(g.vertex_count(), 14);
        assert!(g.respects_bipartition(&side).unwrap());
    }

    #[test]
    fn four_cycle_is_the_paper_example() {
        let (g, m) = four_cycle_3434();
        assert_eq!(m.weight(), 6);
        assert_eq!(g.total_weight(), 14);
        // the only improvement is the full alternating cycle, to weight 8
        assert!(m.len() == 2 && m.free_vertices().count() == 0);
    }

    #[test]
    fn fig1_matches_paper_description() {
        let (g, m) = fig1_graph();
        assert_eq!(m.weight(), 5);
        // optimum {a,c},{d,f} of weight 8 exists
        let opt = Matching::from_edges(6, [Edge::new(0, 2, 4), Edge::new(3, 5, 4)]).unwrap();
        opt.validate(Some(&g)).unwrap();
        assert_eq!(opt.weight(), 8);
        // the unweighted-augmenting but weight-decreasing path b-c-d-e exists
        let bad = crate::alternating::Augmentation::from_component(
            &m,
            &[Edge::new(1, 2, 2), Edge::new(2, 3, 5), Edge::new(3, 4, 2)],
        )
        .unwrap();
        assert!(
            bad.gain() < 0,
            "b-c-d-e must lose weight (gain {})",
            bad.gain()
        );
    }

    #[test]
    fn fig2_satisfies_all_textual_claims() {
        let (g, m0, dashed) = fig2_graph();
        assert_eq!(g.edge_count(), 10);
        // claim 1: w({e,h}) = 2 > w(M0(e)) + w(M0(h)) = 1 + 0
        let eh = dashed.iter().find(|e| e.key() == (4, 7)).unwrap();
        assert!(eh.weight as i128 > (m0.incident_weight(4) + m0.incident_weight(7)) as i128);
        // claim 2: path ({b,a},{a,d},{d,c},{c,f},{f,e}) is augmenting
        let path = [
            Edge::new(1, 0, 10),
            Edge::new(0, 3, 20),
            Edge::new(3, 2, 13),
            Edge::new(2, 5, 10),
            Edge::new(5, 4, 1),
        ];
        let aug = crate::alternating::Augmentation::from_component(&m0, &path).unwrap();
        assert!(
            aug.gain() > 0,
            "paper path must be augmenting, gain {}",
            aug.gain()
        );
        // claim 3: cycle ({e,f},{f,h},{h,g},{g,e}) is augmenting
        let cyc = [
            Edge::new(4, 5, 1),
            Edge::new(5, 7, 1),
            Edge::new(7, 6, 0),
            Edge::new(6, 4, 1),
        ];
        let aug = crate::alternating::Augmentation::from_component(&m0, &cyc).unwrap();
        assert!(
            aug.gain() > 0,
            "paper cycle must be augmenting, gain {}",
            aug.gain()
        );
    }

    #[test]
    fn nonsimple_example_matches_text() {
        let (g, m) = nonsimple_path_example();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(m.len(), 3);
        // the augmentation add {b,c},{d,e}, remove {a,b},{c,d},{e,f} gains 1
        let comp: Vec<Edge> = g.edges().to_vec();
        let aug = crate::alternating::Augmentation::from_component(&m, &comp).unwrap();
        assert_eq!(aug.gain(), 1);
    }

    #[test]
    fn planted_paths_counts() {
        let (g, m, wings) = planted_3aug_paths(3, 10);
        assert_eq!(m.len(), 10);
        assert_eq!(wings.len(), 6);
        assert_eq!(g.edge_count(), 16);
        // each planted wing touches exactly one matched vertex
        for w in &wings {
            let matched = [w.u, w.v].iter().filter(|&&x| m.is_matched(x)).count();
            assert_eq!(matched, 1);
        }
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn planted_paths_validates_k() {
        planted_3aug_paths(5, 3);
    }

    #[test]
    fn alternating_cycles_structure() {
        let (g, m) = alternating_cycles(2, 3, 3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(m.len(), 6);
        assert_eq!(m.weight(), 18);
        m.validate(Some(&g)).unwrap();
        // everything is matched: no augmenting paths exist, only cycles
        assert_eq!(m.free_vertices().count(), 0);
    }

    #[test]
    fn barrier_paths_shape() {
        let g = weighted_barrier_paths(2, 10);
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_weight(), 11);
    }
}
