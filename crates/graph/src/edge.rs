//! Edges and vertices.
//!
//! Vertices are dense indices (`u32`), edges carry positive integer weights
//! as in the paper's model (Section 3.2: "edge weights are positive integers
//! and the maximum edge weight is `O(poly(n))`").

use std::fmt;

/// A vertex identifier: a dense index into `0..n`.
pub type Vertex = u32;

/// An undirected weighted edge.
///
/// The pair `(u, v)` is stored as given; [`Edge::key`] provides a normalized
/// `(min, max)` form for use as a map key. Unweighted algorithms simply treat
/// `weight` as irrelevant (generators produce weight 1 for unweighted
/// instances).
///
/// # Example
///
/// ```
/// use wmatch_graph::Edge;
/// let e = Edge::new(3, 1, 10);
/// assert_eq!(e.key(), (1, 3));
/// assert_eq!(e.other(1), 3);
/// assert!(e.touches(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// One endpoint.
    pub u: Vertex,
    /// The other endpoint.
    pub v: Vertex,
    /// Positive integer weight.
    pub weight: u64,
}

impl Edge {
    /// Creates a new edge.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops carry no meaning for matchings).
    #[inline]
    pub fn new(u: Vertex, v: Vertex, weight: u64) -> Self {
        assert_ne!(u, v, "self-loop edge ({u},{u}) is not allowed");
        Edge { u, v, weight }
    }

    /// Creates a new unit-weight edge.
    #[inline]
    pub fn unweighted(u: Vertex, v: Vertex) -> Self {
        Edge::new(u, v, 1)
    }

    /// Normalized endpoint pair `(min, max)`, suitable as a map key that
    /// identifies the undirected edge regardless of endpoint order.
    #[inline]
    pub fn key(&self) -> (Vertex, Vertex) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }

    /// The endpoint that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: Vertex) -> Vertex {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self}")
        }
    }

    /// Whether `x` is an endpoint of this edge.
    #[inline]
    pub fn touches(&self, x: Vertex) -> bool {
        self.u == x || self.v == x
    }

    /// Whether this edge shares an endpoint with `other`.
    #[inline]
    pub fn conflicts_with(&self, other: &Edge) -> bool {
        self.touches(other.u) || self.touches(other.v)
    }

    /// Whether `self` and `other` connect the same endpoints (ignoring
    /// direction and weight).
    #[inline]
    pub fn same_endpoints(&self, other: &Edge) -> bool {
        self.key() == other.key()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}@{}", self.u, self.v, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_normalized() {
        assert_eq!(Edge::new(5, 2, 1).key(), (2, 5));
        assert_eq!(Edge::new(2, 5, 1).key(), (2, 5));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(1, 2, 3);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        Edge::new(1, 2, 3).other(7);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Edge::new(4, 4, 1);
    }

    #[test]
    fn conflict_detection() {
        let a = Edge::new(0, 1, 1);
        let b = Edge::new(1, 2, 1);
        let c = Edge::new(2, 3, 1);
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
        assert!(b.conflicts_with(&c));
    }

    #[test]
    fn same_endpoints_ignores_order_and_weight() {
        assert!(Edge::new(1, 2, 5).same_endpoints(&Edge::new(2, 1, 9)));
        assert!(!Edge::new(1, 2, 5).same_endpoints(&Edge::new(1, 3, 5)));
    }

    #[test]
    fn display_format() {
        assert_eq!(Edge::new(1, 2, 5).to_string(), "{1,2}@5");
    }
}
