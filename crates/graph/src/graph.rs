//! Undirected weighted graphs.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::csr::CsrView;
use crate::edge::{Edge, Vertex};
use crate::error::GraphError;

/// An undirected graph with positive integer edge weights.
///
/// The graph stores its edges in insertion order (important for streaming
/// experiments, where the edge list *is* the stream). Adjacency queries go
/// through a flat [`CsrView`] built lazily on first use and cached until
/// the next mutation; see [`Graph::csr`]. Parallel edges are permitted by
/// the representation (some constructions repeat edges); use
/// [`Graph::is_simple`] to check for them.
///
/// # Example
///
/// ```
/// use wmatch_graph::Graph;
///
/// let mut g = Graph::new(3);
/// let e0 = g.add_edge(0, 1, 4);
/// let e1 = g.add_edge(1, 2, 2);
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.edge(e0).weight, 4);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1).count(), 2);
/// let _ = e1;
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// Flat adjacency, derived from `edges`: built on first query,
    /// dropped on mutation.
    csr: OnceLock<CsrView>,
    /// The most recently invalidated CSR view, kept so the next build can
    /// reuse its arrays instead of allocating (mutation-heavy reuse
    /// cycles, e.g. the dynamic engine's repair sub-instances, stay
    /// allocation-free at steady state). Behind a `Mutex` only because
    /// [`Graph::csr`] recycles it from `&self`; the lock is uncontended.
    csr_spare: Mutex<Option<CsrView>>,
    /// How many times the CSR view has been (re)built — real work the
    /// facade reports in its telemetry.
    csr_rebuilds: AtomicU64,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        let csr = OnceLock::new();
        if let Some(view) = self.csr.get() {
            let _ = csr.set(view.clone());
        }
        Graph {
            n: self.n,
            edges: self.edges.clone(),
            csr,
            csr_spare: Mutex::new(None),
            csr_rebuilds: AtomicU64::new(self.csr_rebuilds.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // the CSR cache and its rebuild counter are derived state
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph on `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            csr: OnceLock::new(),
            csr_spare: Mutex::new(None),
            csr_rebuilds: AtomicU64::new(0),
        }
    }

    /// Creates a graph on `n` vertices from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or any edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = Graph::new(n);
        for e in edges {
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }

    /// Adds an undirected edge and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex, weight: u64) -> usize {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        let e = Edge::new(u, v, weight);
        let idx = self.edges.len();
        self.edges.push(e);
        self.invalidate_csr();
        idx
    }

    /// Removes all edges, keeping the vertex count (and the edge list's
    /// allocation, so graphs can be reused as per-pass scratch buffers by
    /// the streaming and MPC local-graph builds).
    pub fn clear_edges(&mut self) {
        self.edges.clear();
        self.invalidate_csr();
    }

    /// Repurposes this graph as an empty graph on `n` vertices, keeping
    /// every backing allocation (edge list and recycled CSR arrays).
    ///
    /// This is the reuse primitive behind the dynamic engine's repair
    /// sub-instances and rebuild snapshots: one persistent `Graph` is
    /// reset and refilled per call, so the hot path never allocates once
    /// the buffers have grown to their steady-state size.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
        self.invalidate_csr();
    }

    /// Drops the cached CSR view into the spare slot for the next build
    /// to recycle.
    fn invalidate_csr(&mut self) {
        if let Some(view) = self.csr.take() {
            *self.csr_spare.get_mut().expect("csr spare lock poisoned") = Some(view);
        }
    }

    /// The flat CSR adjacency view of this graph, built on first use and
    /// cached until the next mutation.
    ///
    /// This is the hot-path entry point: inner loops should hoist
    /// `g.csr()` once and scan its contiguous slices rather than calling
    /// [`Graph::incident`]/[`Graph::neighbors`] per step.
    #[inline]
    pub fn csr(&self) -> &CsrView {
        self.csr.get_or_init(|| {
            self.csr_rebuilds.fetch_add(1, Ordering::Relaxed);
            let spare = self
                .csr_spare
                .lock()
                .expect("csr spare lock poisoned")
                .take();
            match spare {
                Some(mut view) => {
                    view.rebuild(self.n, &self.edges);
                    view
                }
                None => CsrView::build(self.n, &self.edges),
            }
        })
    }

    /// How many times this graph's CSR view has been (re)built — a real
    /// counter for the work mutation-triggered invalidation causes.
    pub fn csr_rebuild_count(&self) -> u64 {
        self.csr_rebuilds.load(Ordering::Relaxed)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge with index `idx` (in insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.edge_count()`.
    #[inline]
    pub fn edge(&self, idx: usize) -> Edge {
        self.edges[idx]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over `(edge_index, neighbor)` pairs incident to `v`.
    pub fn incident(&self, v: Vertex) -> impl Iterator<Item = (usize, Edge)> + '_ {
        self.csr()
            .edge_ids(v)
            .iter()
            .map(move |&i| (i as usize, self.edges[i as usize]))
    }

    /// Iterator over the neighbours of `v` (with multiplicity for parallel
    /// edges).
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.csr().neighbors(v).iter().copied()
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.csr().degree(v)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> i128 {
        self.edges.iter().map(|e| e.weight as i128).sum()
    }

    /// Maximum edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Whether the graph has no parallel edges.
    pub fn is_simple(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.edges.len());
        self.edges.iter().all(|e| seen.insert(e.key()))
    }

    /// Whether the vertex bipartition `side` (`side[v]` is the side of `v`)
    /// makes the graph bipartite, i.e. every edge crosses sides.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `side.len() != n`.
    pub fn respects_bipartition(&self, side: &[bool]) -> Result<bool, GraphError> {
        if side.len() != self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: side.len() as Vertex,
                n: self.n,
            });
        }
        Ok(self
            .edges
            .iter()
            .all(|e| side[e.u as usize] != side[e.v as usize]))
    }

    /// Attempts to 2-colour the graph; returns the colouring if bipartite.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let csr = self.csr();
        let mut color = vec![None; self.n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..self.n {
            if color[s].is_some() {
                continue;
            }
            color[s] = Some(false);
            queue.push_back(s as Vertex);
            while let Some(v) = queue.pop_front() {
                let cv = color[v as usize].unwrap();
                for &w in csr.neighbors(v) {
                    match color[w as usize] {
                        None => {
                            color[w as usize] = Some(!cv);
                            queue.push_back(w);
                        }
                        Some(cw) if cw == cv => return None,
                        _ => {}
                    }
                }
            }
        }
        Some(color.into_iter().map(|c| c.unwrap()).collect())
    }

    /// A copy of this graph with all edge weights replaced by 1.
    pub fn unweighted_copy(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.u, e.v, 1);
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 0, 3);
        g
    }

    #[test]
    fn counts_and_access() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(1), Edge::new(1, 2, 2));
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_weight(), 3);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for v in 0..3u32 {
            assert_eq!(g.degree(v), 2);
            for (i, e) in g.incident(v) {
                assert!(e.touches(v));
                assert_eq!(g.edge(i), e);
            }
        }
        let mut ns: Vec<_> = g.neighbors(0).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_range_checked() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1);
    }

    #[test]
    fn simplicity_detects_parallel_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        assert!(g.is_simple());
        g.add_edge(1, 0, 2);
        assert!(!g.is_simple());
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4, 1);
        }
        let side = g.bipartition().expect("C4 is bipartite");
        assert!(g.respects_bipartition(&side).unwrap());
    }

    #[test]
    fn bipartition_rejects_odd_cycle() {
        assert!(triangle().bipartition().is_none());
    }

    #[test]
    fn respects_bipartition_checks_length() {
        let g = triangle();
        assert!(g.respects_bipartition(&[true, false]).is_err());
    }

    #[test]
    fn unweighted_copy_preserves_structure() {
        let g = triangle();
        let u = g.unweighted_copy();
        assert_eq!(u.edge_count(), 3);
        assert!(u.edges().iter().all(|e| e.weight == 1));
        assert_eq!(u.edge(0).key(), g.edge(0).key());
    }

    #[test]
    fn csr_cache_invalidated_on_mutation() {
        let mut g = triangle();
        assert_eq!(g.csr_rebuild_count(), 0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.csr_rebuild_count(), 1, "queries share one build");
        g.add_edge(0, 1, 9);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.csr_rebuild_count(), 2, "mutation forces a rebuild");
        g.clear_edges();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn reset_reuses_buffers_and_recycled_csr_agrees() {
        let mut g = triangle();
        let fresh = {
            let mut f = Graph::new(3);
            f.add_edge(0, 1, 1);
            f.add_edge(1, 2, 2);
            f.add_edge(2, 0, 3);
            f
        };
        assert_eq!(g.csr(), fresh.csr(), "first build");
        // invalidate, then rebuild through the recycled spare view
        g.add_edge(0, 1, 9);
        let mut f2 = Graph::new(3);
        for e in g.edges().to_vec() {
            f2.add_edge(e.u, e.v, e.weight);
        }
        assert_eq!(g.csr(), f2.csr(), "recycled rebuild matches fresh build");
        // reset repurposes the graph for a different vertex count
        g.reset(2);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        g.add_edge(0, 1, 7);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = triangle();
        let h = Graph::from_edges(3, g.edges().iter().copied());
        assert_eq!(g, h);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_weight(), 0);
        assert!(g.is_simple());
        assert_eq!(g.bipartition(), Some(vec![]));
    }
}
