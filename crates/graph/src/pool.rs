//! A persistent, deterministic worker pool for the parallel layers of the
//! workspace.
//!
//! Every parallelizable inner loop of the paper's machinery — the
//! Algorithm 3 class sweep ("for each W **in parallel**"), the Algorithm 4
//! candidate scoring, the per-machine local computations of the MPC
//! simulator — shares the same shape: a fixed number of independent,
//! read-only (or slot-disjoint) items whose results must come back **in
//! item order** so that parallel and sequential execution are
//! indistinguishable. [`WorkerPool`] serves exactly that shape:
//!
//! * **spawn once per solve** — workers are OS threads created in
//!   [`WorkerPool::new`] and parked on a condvar between jobs, so a driver
//!   that dispatches hundreds of sweeps per solve pays thread-spawn cost
//!   once, not per round;
//! * **no lock on the result path** — [`WorkerPool::run_map`] partitions
//!   the items into per-worker owner ranges; workers claim size-adaptive
//!   chunks from their own range and **steal** chunks from the fullest
//!   foreign range once theirs drains (so one 10–50× heavier weight class
//!   no longer straggles the whole sweep), and every worker writes each
//!   result into the pre-sized slot of that item's index; there is no
//!   shared `Mutex<Vec<_>>` to contend on and no sort-by-index fixup
//!   afterwards;
//! * **one reusable [`Scratch`] arena per worker** — tasks receive the
//!   arena of whichever worker runs them, so the hot loops stay
//!   allocation-free across jobs exactly as they do sequentially;
//! * **determinism by construction** — results are keyed by item index and
//!   every task is a pure function of its item, so for any thread count
//!   (including 1, which runs inline on the caller with zero
//!   synchronization) the returned vector is bit-identical.
//!
//! The caller thread participates as worker slot 0, so a pool of
//! `threads = t` spawns `t − 1` OS threads and `threads = 1` is the
//! sequential fast path with no atomics at all.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::scratch::Scratch;

/// A type-erased pool task: `(worker_slot, item_index, worker_scratch)`.
type Task<'a> = dyn Fn(usize, usize, &mut Scratch) + Sync + 'a;

/// One dispatched job: a borrowed task plus its own claim/completion
/// counters. The counters live *inside* the job (behind an [`Arc`]) so a
/// straggling worker that wakes after the job finished keeps draining a
/// dead job's (empty) ranges instead of stealing items from the next one.
///
/// Items are partitioned into one contiguous **owner range per worker**;
/// each range has an atomic cursor from which workers claim size-adaptive
/// chunks (large while the range is full, shrinking toward 1 as it drains,
/// so skewed per-item costs still balance). A worker drains its own range
/// first and then *steals* chunks from the fullest remaining range, which
/// keeps every worker busy even when one owner range holds all the heavy
/// items. Results stay keyed by item index, so stealing never affects
/// output order or content.
struct Job {
    /// Erased pointer to the dispatcher's task closure.
    ///
    /// SAFETY contract: the dispatcher ([`WorkerPool::dispatch`]) blocks
    /// until `done == items`, and `done` is only incremented after a task
    /// invocation returns, so the pointee outlives every dereference.
    task: *const Task<'static>,
    items: usize,
    /// Owner-range bounds: worker `w` owns items `starts[w]..starts[w+1]`.
    starts: Vec<usize>,
    /// Claimed-item count within each owner range (may overshoot the range
    /// length after racing claims; claimants clamp).
    cursors: Vec<AtomicUsize>,
    done: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `task` points at a `Sync` closure (enforced by the public
// signatures) that the dispatcher keeps alive for the job's lifetime; the
// counters are atomics.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Builds the per-worker owner ranges for `items` split across
    /// `workers` (near-equal contiguous slices, earlier ranges one longer
    /// when `items` does not divide evenly).
    fn partition(items: usize, workers: usize) -> Vec<usize> {
        let base = items / workers;
        let extra = items % workers;
        let mut starts = Vec::with_capacity(workers + 1);
        let mut at = 0;
        starts.push(0);
        for w in 0..workers {
            at += base + usize::from(w < extra);
            starts.push(at);
        }
        starts
    }

    /// Size-adaptive chunk for a range with `remaining` unclaimed items:
    /// grab a fraction so early claims amortize the atomic and late claims
    /// shrink to single items for load balance. Steals take a bigger bite
    /// (half the remainder) since the thief starts cold.
    fn chunk_size(remaining: usize, stealing: bool) -> usize {
        let c = if stealing {
            remaining / 2
        } else {
            remaining / 4
        };
        c.clamp(1, 64)
    }

    /// Attempts to claim a chunk from `victim`'s range. Returns the claimed
    /// item range, or `None` if the range is drained.
    fn claim(&self, victim: usize, stealing: bool) -> Option<(usize, usize)> {
        let (start, end) = (self.starts[victim], self.starts[victim + 1]);
        let len = end - start;
        let cur = &self.cursors[victim];
        let seen = cur.load(Ordering::Relaxed);
        if seen >= len {
            return None;
        }
        let chunk = Self::chunk_size(len - seen, stealing);
        let at = cur.fetch_add(chunk, Ordering::Relaxed);
        if at >= len {
            return None;
        }
        let take = chunk.min(len - at);
        Some((start + at, start + at + take))
    }

    /// Claims and runs chunks until every range is drained, crediting busy
    /// time, steal counts, and arena footprint to `slot`.
    fn work(&self, shared: &Shared, slot: usize, scratch: &mut Scratch) {
        let t0 = Instant::now();
        let workers = self.cursors.len();
        let own = slot.min(workers - 1);
        loop {
            // own range first; when drained, steal from the fullest range
            let (victim, stealing) = if self.remaining(own) > 0 {
                (own, false)
            } else {
                match (0..workers)
                    .filter(|&w| w != own)
                    .map(|w| (self.remaining(w), w))
                    .max()
                {
                    Some((rem, w)) if rem > 0 => (w, true),
                    _ => break,
                }
            };
            let Some((lo, hi)) = self.claim(victim, stealing) else {
                continue; // raced; re-scan
            };
            if stealing {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            for i in lo..hi {
                // SAFETY: see the contract on `Job::task` — the dispatcher
                // cannot return (and thus drop the closure) before this
                // chunk's `done` increment below.
                let task = unsafe { &*self.task };
                if catch_unwind(AssertUnwindSafe(|| task(slot, i, scratch))).is_err() {
                    self.panicked.store(true, Ordering::Release);
                }
            }
            let take = hi - lo;
            if self.done.fetch_add(take, Ordering::AcqRel) + take == self.items {
                // last chunk: wake the dispatcher (lock ordering: the
                // dispatcher re-checks `done` under the same mutex)
                let _guard = shared.state.lock().unwrap();
                shared.job_done.notify_all();
            }
        }
        shared.busy_ns[slot].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.high_water[slot].fetch_max(scratch.high_water(), Ordering::Relaxed);
    }

    /// Unclaimed items left in `w`'s range (racy snapshot — good enough for
    /// victim selection; `claim` re-validates).
    fn remaining(&self, w: usize) -> usize {
        let len = self.starts[w + 1] - self.starts[w];
        len.saturating_sub(self.cursors[w].load(Ordering::Relaxed))
    }
}

struct State {
    /// The job currently being executed, if any.
    job: Option<Arc<Job>>,
    /// Bumped once per dispatched job so a worker never re-enters a job it
    /// already drained.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
    /// Cumulative task-execution time per worker slot (slot 0 = caller).
    busy_ns: Vec<AtomicU64>,
    /// Scratch-arena high-water mark per worker slot.
    high_water: Vec<AtomicUsize>,
    /// Cumulative count of stolen chunks (claims from a foreign owner
    /// range) across all jobs.
    steals: AtomicU64,
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    let mut scratch = Scratch::new();
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    if let Some(job) = st.job.as_ref() {
                        seen = st.generation;
                        break Arc::clone(job);
                    }
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        job.work(&shared, slot, &mut scratch);
    }
}

/// Resolves a `threads` configuration value to a concrete worker count:
/// `0` means one worker per available core, anything else is taken
/// verbatim (minimum 1). This is the single definition of the contract
/// that `MainAlgConfig::threads` and `SolveRequest::threads` both document.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// The persistent worker pool. See the [module docs](self) for the design.
///
/// # Example
///
/// ```
/// use wmatch_graph::pool::WorkerPool;
///
/// let mut pool = WorkerPool::new(4);
/// let squares = pool.run_map(8, &|_worker, i, _scratch| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    caller_scratch: Scratch,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (`0` = one per available core;
    /// see [`resolve_threads`]). The caller thread is worker 0, so
    /// `threads − 1` OS threads are spawned; `threads = 1` spawns none and
    /// every job runs inline.
    pub fn new(threads: usize) -> Self {
        let workers = resolve_threads(threads);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            high_water: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            steals: AtomicU64::new(0),
        });
        let handles = (1..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wmatch-pool-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
            caller_scratch: Scratch::new(),
        }
    }

    /// Total workers, caller included (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative task-execution time per worker slot in nanoseconds
    /// (slot 0 is the caller thread) — the `busy_ns` telemetry the facade
    /// reports.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative number of **stolen chunks** across all jobs: claims a
    /// worker made from another worker's owner range after draining its
    /// own. Zero under sequential execution and whenever every owner keeps
    /// pace; growth is the signature of skewed per-item costs being
    /// rebalanced. Stealing never affects results — only which worker's
    /// scratch arena ran an item.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Largest scratch-arena footprint across all workers (including the
    /// caller's arena).
    pub fn scratch_high_water(&self) -> usize {
        self.shared
            .high_water
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
            .max(self.caller_scratch.high_water())
    }

    /// The caller-thread arena (worker slot 0), for sequential phases that
    /// want to reuse the pool's scratch between parallel jobs.
    pub fn caller_scratch(&mut self) -> &mut Scratch {
        &mut self.caller_scratch
    }

    /// Runs `f(worker, item, scratch)` for every `item ∈ 0..items` and
    /// returns the results **in item order**. Each result is written into
    /// its own pre-sized slot by the worker that claimed the item — no
    /// lock, no reordering pass. Panics in `f` are propagated to the
    /// caller after the job drains (that job's results are leaked).
    pub fn run_map<T, F>(&mut self, items: usize, f: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize, &mut Scratch) -> T + Sync,
    {
        // sequential fast path: no spawned workers, or nothing to share
        if self.handles.is_empty() || items <= 1 {
            let t0 = Instant::now();
            let out = (0..items)
                .map(|i| f(0, i, &mut self.caller_scratch))
                .collect();
            self.shared.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return out;
        }

        let mut slots: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(items);
        // SAFETY: `MaybeUninit` needs no initialization; every slot is
        // written exactly once below before being read.
        unsafe { slots.set_len(items) };
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let task = move |worker: usize, i: usize, scratch: &mut Scratch| {
            let value = f(worker, i, scratch);
            // SAFETY: item index `i` is claimed by exactly one worker
            // (atomic fetch_add), so slot `i` is written exactly once and
            // never read concurrently.
            unsafe {
                slots_ptr
                    .get()
                    .add(i)
                    .write(std::mem::MaybeUninit::new(value))
            };
        };
        let panicked = self.dispatch(items, &task);
        if panicked {
            // slots may be partially initialized; leak them rather than
            // dropping uninitialized memory
            std::mem::forget(slots);
            panic!("a WorkerPool task panicked");
        }
        // SAFETY: all `items` slots were written; `MaybeUninit<T>` and `T`
        // have identical layout.
        unsafe {
            let ptr = slots.as_mut_ptr() as *mut T;
            let (len, cap) = (slots.len(), slots.capacity());
            std::mem::forget(slots);
            Vec::from_raw_parts(ptr, len, cap)
        }
    }

    /// Like [`WorkerPool::run_map`], but each task additionally gets
    /// **exclusive mutable access** to its own element of `items` — the
    /// shape of the MPC simulator's per-machine local computations, where
    /// machine `i` mutates its local storage and returns its outgoing
    /// messages.
    pub fn run_over<I, T, F>(&mut self, items: &mut [I], f: &F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, usize, &mut I, &mut Scratch) -> T + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        self.run_map(n, &move |worker, i, scratch| {
            // SAFETY: each index is claimed by exactly one worker, so the
            // mutable borrows of `items[i]` are disjoint.
            let item = unsafe { &mut *base.get().add(i) };
            f(worker, i, item, scratch)
        })
    }

    /// Publishes a job, participates as worker 0, and blocks until every
    /// item completed. Returns whether any task panicked.
    fn dispatch<'a>(&mut self, items: usize, task: &Task<'a>) -> bool {
        // SAFETY: erase the task's lifetime for storage in the job slot.
        // The contract on `Job::task` holds because this function does not
        // return before `done == items`.
        let task: *const Task<'static> = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task,
            items,
            starts: Job::partition(items, self.workers),
            cursors: (0..self.workers).map(|_| AtomicUsize::new(0)).collect(),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.generation += 1;
            st.job = Some(Arc::clone(&job));
            self.shared.job_ready.notify_all();
        }
        let shared = Arc::clone(&self.shared);
        job.work(&shared, 0, &mut self.caller_scratch);
        {
            let mut st = self.shared.state.lock().unwrap();
            while job.done.load(Ordering::Acquire) < items {
                st = self.shared.job_done.wait(st).unwrap();
            }
            st.job = None;
        }
        job.panicked.load(Ordering::Acquire)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A raw pointer that asserts cross-thread transferability. Every use site
/// guarantees disjoint access by item index.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pool's claim counter hands each index to exactly one worker,
// so all dereferences of the pointee are disjoint.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let out = pool.run_map(5, &|w, i, _s| (w, i * 2));
        assert_eq!(out, vec![(0, 0), (0, 2), (0, 4), (0, 6), (0, 8)]);
    }

    #[test]
    fn results_come_back_in_item_order() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50 {
            let out = pool.run_map(97, &|_w, i, _s| i * i + round);
            let want: Vec<usize> = (0..97).map(|i| i * i + round).collect();
            assert_eq!(out, want, "round {round}");
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let expected: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        for threads in [1usize, 2, 3, 8, 0] {
            let mut pool = WorkerPool::new(threads);
            let out = pool.run_map(200, &|_w, i, _s| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn workers_share_scratch_arenas() {
        let mut pool = WorkerPool::new(3);
        let out = pool.run_map(40, &|_w, i, s: &mut Scratch| {
            s.begin(64);
            assert!(s.visited.insert(i as u32)); // arena was epoch-reset
            s.visited.contains(i as u32)
        });
        assert!(out.iter().all(|&fresh| fresh));
        assert!(pool.scratch_high_water() >= 64);
    }

    #[test]
    fn run_over_gives_exclusive_item_access() {
        let mut pool = WorkerPool::new(4);
        let mut items: Vec<Vec<usize>> = (0..20).map(|i| vec![i]).collect();
        let lens = pool.run_over(&mut items, &|_w, i, item: &mut Vec<usize>, _s| {
            item.push(i * 10);
            item.len()
        });
        assert!(lens.iter().all(|&l| l == 2));
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item, &vec![i, i * 10]);
        }
    }

    #[test]
    fn busy_ns_accumulates_per_worker() {
        let mut pool = WorkerPool::new(2);
        pool.run_map(64, &|_w, _i, _s| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let busy = pool.busy_ns();
        assert_eq!(busy.len(), 2);
        assert!(busy.iter().sum::<u64>() > 0);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let mut pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_map(0, &|_w, i, _s| i);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn pool_survives_a_task_panic() {
        let mut pool = WorkerPool::new(2);
        let hit = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_map(8, &|_w, i, _s| {
                hit.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(r.is_err(), "panic must propagate to the dispatcher");
        // the pool keeps working afterwards
        let out = pool.run_map(4, &|_w, i, _s| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn partition_covers_all_items_contiguously() {
        for items in [0usize, 1, 2, 7, 64, 97, 1000] {
            for workers in [1usize, 2, 3, 8] {
                let starts = Job::partition(items, workers);
                assert_eq!(starts.len(), workers + 1);
                assert_eq!(starts[0], 0);
                assert_eq!(*starts.last().unwrap(), items);
                for w in 0..workers {
                    assert!(starts[w] <= starts[w + 1]);
                    // near-equal split: ranges differ by at most one item
                    let len = starts[w + 1] - starts[w];
                    assert!(len == items / workers || len == items / workers + 1);
                }
            }
        }
    }

    #[test]
    fn chunk_size_adapts_and_never_zero() {
        assert_eq!(Job::chunk_size(1, false), 1);
        assert_eq!(Job::chunk_size(1, true), 1);
        assert_eq!(Job::chunk_size(3, false), 1);
        assert_eq!(Job::chunk_size(100, false), 25);
        assert_eq!(Job::chunk_size(100, true), 50);
        assert_eq!(Job::chunk_size(100_000, false), 64); // capped for balance
    }

    #[test]
    fn steals_counter_is_monotone_and_output_unaffected() {
        let mut pool = WorkerPool::new(4);
        let before = pool.steals();
        // skew: all the work lives in the first owner range, so any worker
        // that wakes in time must steal to contribute
        let out = pool.run_map(256, &|_w, i, _s| {
            if i < 64 {
                std::hint::black_box((0..20_000u64).sum::<u64>());
            }
            i * 3
        });
        assert_eq!(out, (0..256).map(|i| i * 3).collect::<Vec<_>>());
        // stealing is timing-dependent (may be zero on a busy box), but the
        // counter never runs backwards and survives further jobs
        assert!(pool.steals() >= before);
        pool.run_map(32, &|_w, i, _s| i);
        assert!(pool.steals() >= before);
    }

    #[test]
    fn panic_mid_chunk_does_not_deadlock_or_poison() {
        // items >> workers so claims are multi-item chunks; a panic on one
        // item of a chunk must still complete the rest of the chunk and
        // drain the job (no lost `done` increments = no parked dispatcher)
        let mut pool = WorkerPool::new(3);
        for round in 0..10 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run_map(200, &|_w, i, _s| {
                    if i % 37 == round {
                        panic!("mid-chunk boom");
                    }
                    i
                })
            }));
            assert!(r.is_err(), "round {round}: panic must propagate");
            let out = pool.run_map(5, &|_w, i, _s| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16], "round {round}: pool dead");
        }
    }

    #[test]
    fn scratch_high_water_tracked_under_stealing() {
        let mut pool = WorkerPool::new(4);
        pool.run_map(128, &|_w, i, s: &mut Scratch| {
            s.begin(512);
            s.visited.insert((i % 512) as u32);
        });
        assert!(pool.scratch_high_water() >= 512);
    }

    #[test]
    fn many_small_jobs_reuse_the_same_threads() {
        // regression shape for the old spawn-per-round sweep: hundreds of
        // dispatches must be cheap and correct on one persistent pool
        let mut pool = WorkerPool::new(4);
        let mut total = 0usize;
        for j in 0..300 {
            total += pool.run_map(7, &|_w, i, _s| i + j).iter().sum::<usize>();
        }
        let want: usize = (0..300).map(|j| (0..7).map(|i| i + j).sum::<usize>()).sum();
        assert_eq!(total, want);
    }
}
