//! A persistent, deterministic worker pool for the parallel layers of the
//! workspace.
//!
//! Every parallelizable inner loop of the paper's machinery — the
//! Algorithm 3 class sweep ("for each W **in parallel**"), the Algorithm 4
//! candidate scoring, the per-machine local computations of the MPC
//! simulator — shares the same shape: a fixed number of independent,
//! read-only (or slot-disjoint) items whose results must come back **in
//! item order** so that parallel and sequential execution are
//! indistinguishable. [`WorkerPool`] serves exactly that shape:
//!
//! * **spawn once per solve** — workers are OS threads created in
//!   [`WorkerPool::new`] and parked on a condvar between jobs, so a driver
//!   that dispatches hundreds of sweeps per solve pays thread-spawn cost
//!   once, not per round;
//! * **no lock on the result path** — [`WorkerPool::run_map`] hands each
//!   worker item indices from an atomic counter and the worker writes its
//!   result into the pre-sized slot of that index; there is no shared
//!   `Mutex<Vec<_>>` to contend on and no sort-by-index fixup afterwards;
//! * **one reusable [`Scratch`] arena per worker** — tasks receive the
//!   arena of whichever worker runs them, so the hot loops stay
//!   allocation-free across jobs exactly as they do sequentially;
//! * **determinism by construction** — results are keyed by item index and
//!   every task is a pure function of its item, so for any thread count
//!   (including 1, which runs inline on the caller with zero
//!   synchronization) the returned vector is bit-identical.
//!
//! The caller thread participates as worker slot 0, so a pool of
//! `threads = t` spawns `t − 1` OS threads and `threads = 1` is the
//! sequential fast path with no atomics at all.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::scratch::Scratch;

/// A type-erased pool task: `(worker_slot, item_index, worker_scratch)`.
type Task<'a> = dyn Fn(usize, usize, &mut Scratch) + Sync + 'a;

/// One dispatched job: a borrowed task plus its own claim/completion
/// counters. The counters live *inside* the job (behind an [`Arc`]) so a
/// straggling worker that wakes after the job finished keeps decrementing
/// a dead job's counter instead of stealing items from the next one.
struct Job {
    /// Erased pointer to the dispatcher's task closure.
    ///
    /// SAFETY contract: the dispatcher ([`WorkerPool::dispatch`]) blocks
    /// until `done == items`, and `done` is only incremented after a task
    /// invocation returns, so the pointee outlives every dereference.
    task: *const Task<'static>,
    items: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `task` points at a `Sync` closure (enforced by the public
// signatures) that the dispatcher keeps alive for the job's lifetime; the
// counters are atomics.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs items until the job is drained, crediting busy time
    /// and arena footprint to `slot`.
    fn work(&self, shared: &Shared, slot: usize, scratch: &mut Scratch) {
        let t0 = Instant::now();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.items {
                break;
            }
            // SAFETY: see the contract on `Job::task` — the dispatcher
            // cannot return (and thus drop the closure) before this item's
            // `done` increment below.
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(slot, i, scratch))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.items {
                // last item: wake the dispatcher (lock ordering: the
                // dispatcher re-checks `done` under the same mutex)
                let _guard = shared.state.lock().unwrap();
                shared.job_done.notify_all();
            }
        }
        shared.busy_ns[slot].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.high_water[slot].fetch_max(scratch.high_water(), Ordering::Relaxed);
    }
}

struct State {
    /// The job currently being executed, if any.
    job: Option<Arc<Job>>,
    /// Bumped once per dispatched job so a worker never re-enters a job it
    /// already drained.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
    /// Cumulative task-execution time per worker slot (slot 0 = caller).
    busy_ns: Vec<AtomicU64>,
    /// Scratch-arena high-water mark per worker slot.
    high_water: Vec<AtomicUsize>,
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    let mut scratch = Scratch::new();
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    if let Some(job) = st.job.as_ref() {
                        seen = st.generation;
                        break Arc::clone(job);
                    }
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        job.work(&shared, slot, &mut scratch);
    }
}

/// Resolves a `threads` configuration value to a concrete worker count:
/// `0` means one worker per available core, anything else is taken
/// verbatim (minimum 1). This is the single definition of the contract
/// that `MainAlgConfig::threads` and `SolveRequest::threads` both document.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// The persistent worker pool. See the [module docs](self) for the design.
///
/// # Example
///
/// ```
/// use wmatch_graph::pool::WorkerPool;
///
/// let mut pool = WorkerPool::new(4);
/// let squares = pool.run_map(8, &|_worker, i, _scratch| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    caller_scratch: Scratch,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (`0` = one per available core;
    /// see [`resolve_threads`]). The caller thread is worker 0, so
    /// `threads − 1` OS threads are spawned; `threads = 1` spawns none and
    /// every job runs inline.
    pub fn new(threads: usize) -> Self {
        let workers = resolve_threads(threads);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            high_water: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
        });
        let handles = (1..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wmatch-pool-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
            caller_scratch: Scratch::new(),
        }
    }

    /// Total workers, caller included (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative task-execution time per worker slot in nanoseconds
    /// (slot 0 is the caller thread) — the `busy_ns` telemetry the facade
    /// reports.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Largest scratch-arena footprint across all workers (including the
    /// caller's arena).
    pub fn scratch_high_water(&self) -> usize {
        self.shared
            .high_water
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
            .max(self.caller_scratch.high_water())
    }

    /// The caller-thread arena (worker slot 0), for sequential phases that
    /// want to reuse the pool's scratch between parallel jobs.
    pub fn caller_scratch(&mut self) -> &mut Scratch {
        &mut self.caller_scratch
    }

    /// Runs `f(worker, item, scratch)` for every `item ∈ 0..items` and
    /// returns the results **in item order**. Each result is written into
    /// its own pre-sized slot by the worker that claimed the item — no
    /// lock, no reordering pass. Panics in `f` are propagated to the
    /// caller after the job drains (that job's results are leaked).
    pub fn run_map<T, F>(&mut self, items: usize, f: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize, &mut Scratch) -> T + Sync,
    {
        // sequential fast path: no spawned workers, or nothing to share
        if self.handles.is_empty() || items <= 1 {
            let t0 = Instant::now();
            let out = (0..items)
                .map(|i| f(0, i, &mut self.caller_scratch))
                .collect();
            self.shared.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return out;
        }

        let mut slots: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(items);
        // SAFETY: `MaybeUninit` needs no initialization; every slot is
        // written exactly once below before being read.
        unsafe { slots.set_len(items) };
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let task = move |worker: usize, i: usize, scratch: &mut Scratch| {
            let value = f(worker, i, scratch);
            // SAFETY: item index `i` is claimed by exactly one worker
            // (atomic fetch_add), so slot `i` is written exactly once and
            // never read concurrently.
            unsafe {
                slots_ptr
                    .get()
                    .add(i)
                    .write(std::mem::MaybeUninit::new(value))
            };
        };
        let panicked = self.dispatch(items, &task);
        if panicked {
            // slots may be partially initialized; leak them rather than
            // dropping uninitialized memory
            std::mem::forget(slots);
            panic!("a WorkerPool task panicked");
        }
        // SAFETY: all `items` slots were written; `MaybeUninit<T>` and `T`
        // have identical layout.
        unsafe {
            let ptr = slots.as_mut_ptr() as *mut T;
            let (len, cap) = (slots.len(), slots.capacity());
            std::mem::forget(slots);
            Vec::from_raw_parts(ptr, len, cap)
        }
    }

    /// Like [`WorkerPool::run_map`], but each task additionally gets
    /// **exclusive mutable access** to its own element of `items` — the
    /// shape of the MPC simulator's per-machine local computations, where
    /// machine `i` mutates its local storage and returns its outgoing
    /// messages.
    pub fn run_over<I, T, F>(&mut self, items: &mut [I], f: &F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, usize, &mut I, &mut Scratch) -> T + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        self.run_map(n, &move |worker, i, scratch| {
            // SAFETY: each index is claimed by exactly one worker, so the
            // mutable borrows of `items[i]` are disjoint.
            let item = unsafe { &mut *base.get().add(i) };
            f(worker, i, item, scratch)
        })
    }

    /// Publishes a job, participates as worker 0, and blocks until every
    /// item completed. Returns whether any task panicked.
    fn dispatch<'a>(&mut self, items: usize, task: &Task<'a>) -> bool {
        // SAFETY: erase the task's lifetime for storage in the job slot.
        // The contract on `Job::task` holds because this function does not
        // return before `done == items`.
        let task: *const Task<'static> = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task,
            items,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.generation += 1;
            st.job = Some(Arc::clone(&job));
            self.shared.job_ready.notify_all();
        }
        let shared = Arc::clone(&self.shared);
        job.work(&shared, 0, &mut self.caller_scratch);
        {
            let mut st = self.shared.state.lock().unwrap();
            while job.done.load(Ordering::Acquire) < items {
                st = self.shared.job_done.wait(st).unwrap();
            }
            st.job = None;
        }
        job.panicked.load(Ordering::Acquire)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A raw pointer that asserts cross-thread transferability. Every use site
/// guarantees disjoint access by item index.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pool's claim counter hands each index to exactly one worker,
// so all dereferences of the pointee are disjoint.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let out = pool.run_map(5, &|w, i, _s| (w, i * 2));
        assert_eq!(out, vec![(0, 0), (0, 2), (0, 4), (0, 6), (0, 8)]);
    }

    #[test]
    fn results_come_back_in_item_order() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50 {
            let out = pool.run_map(97, &|_w, i, _s| i * i + round);
            let want: Vec<usize> = (0..97).map(|i| i * i + round).collect();
            assert_eq!(out, want, "round {round}");
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let expected: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        for threads in [1usize, 2, 3, 8, 0] {
            let mut pool = WorkerPool::new(threads);
            let out = pool.run_map(200, &|_w, i, _s| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn workers_share_scratch_arenas() {
        let mut pool = WorkerPool::new(3);
        let out = pool.run_map(40, &|_w, i, s: &mut Scratch| {
            s.begin(64);
            assert!(s.visited.insert(i as u32)); // arena was epoch-reset
            s.visited.contains(i as u32)
        });
        assert!(out.iter().all(|&fresh| fresh));
        assert!(pool.scratch_high_water() >= 64);
    }

    #[test]
    fn run_over_gives_exclusive_item_access() {
        let mut pool = WorkerPool::new(4);
        let mut items: Vec<Vec<usize>> = (0..20).map(|i| vec![i]).collect();
        let lens = pool.run_over(&mut items, &|_w, i, item: &mut Vec<usize>, _s| {
            item.push(i * 10);
            item.len()
        });
        assert!(lens.iter().all(|&l| l == 2));
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item, &vec![i, i * 10]);
        }
    }

    #[test]
    fn busy_ns_accumulates_per_worker() {
        let mut pool = WorkerPool::new(2);
        pool.run_map(64, &|_w, _i, _s| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let busy = pool.busy_ns();
        assert_eq!(busy.len(), 2);
        assert!(busy.iter().sum::<u64>() > 0);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let mut pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_map(0, &|_w, i, _s| i);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn pool_survives_a_task_panic() {
        let mut pool = WorkerPool::new(2);
        let hit = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_map(8, &|_w, i, _s| {
                hit.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(r.is_err(), "panic must propagate to the dispatcher");
        // the pool keeps working afterwards
        let out = pool.run_map(4, &|_w, i, _s| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn many_small_jobs_reuse_the_same_threads() {
        // regression shape for the old spawn-per-round sweep: hundreds of
        // dispatches must be cheap and correct on one persistent pool
        let mut pool = WorkerPool::new(4);
        let mut total = 0usize;
        for j in 0..300 {
            total += pool.run_map(7, &|_w, i, _s| i + j).iter().sum::<usize>();
        }
        let want: usize = (0..300).map(|j| (0..7).map(|i| i + j).sum::<usize>()).sum();
        assert_eq!(total, want);
    }
}
