//! Flat CSR (compressed sparse row) adjacency views.
//!
//! The per-round cost of Algorithm 3 (line 3) and of the alternating-walk
//! searches of Algorithm 4 is dominated by neighbourhood scans. A
//! [`CsrView`] packs the adjacency of a [`Graph`](crate::Graph) into three
//! flat arrays — prefix offsets, neighbour targets, and incident edge
//! indices — so those scans read contiguous memory instead of chasing one
//! heap pointer per vertex (`Vec<Vec<usize>>`). The view is built once per
//! graph (lazily, on first use) and cached; any mutation invalidates it.
//!
//! Iteration order is the adjacency contract the rest of the workspace
//! depends on: the edges incident to `v` appear in insertion order, exactly
//! as a per-vertex push during [`Graph::add_edge`](crate::Graph::add_edge)
//! would have recorded them. Deterministic traversals (DFS in
//! [`aug_search`](crate::aug_search), Hopcroft–Karp augmentation order)
//! therefore produce bit-identical results to the legacy nested-`Vec`
//! representation.

use crate::edge::{Edge, Vertex};

/// Stable counting sort into buckets: distributes items `0..len` over
/// `n_buckets` buckets by `key`, returning `(offsets, order)` where
/// `order[offsets[b]..offsets[b + 1]]` lists the items of bucket `b` in
/// input order.
///
/// This is the one bucketing idiom behind every flat structure in the
/// workspace — the CSR view itself, Hopcroft–Karp's left-only adjacency,
/// the wing buckets of `Unw-3-Aug-Paths` — kept in one place so the
/// overflow guard and the stability contract are shared.
///
/// # Example
///
/// ```
/// use wmatch_graph::csr::bucket_stable;
///
/// let keys = [1u32, 0, 1, 0];
/// let (offsets, order) = bucket_stable(2, keys.len(), |i| keys[i]);
/// assert_eq!(offsets, vec![0, 2, 4]);
/// assert_eq!(order, vec![1, 3, 0, 2]);
/// ```
pub fn bucket_stable(
    n_buckets: usize,
    len: usize,
    key: impl Fn(usize) -> u32,
) -> (Vec<u32>, Vec<u32>) {
    assert!(
        len <= u32::MAX as usize,
        "item count exceeds the u32 index space"
    );
    let mut offsets = vec![0u32; n_buckets + 1];
    for i in 0..len {
        offsets[key(i) as usize + 1] += 1;
    }
    for b in 0..n_buckets {
        offsets[b + 1] += offsets[b];
    }
    let mut order = vec![0u32; len];
    let mut cursor = offsets.clone();
    for i in 0..len {
        let c = &mut cursor[key(i) as usize];
        order[*c as usize] = i as u32;
        *c += 1;
    }
    (offsets, order)
}

/// Flat adjacency of a graph: for each vertex, a contiguous slice of
/// neighbours and of incident edge indices.
///
/// Obtained from [`Graph::csr`](crate::Graph::csr); see the module docs for
/// the ordering contract.
///
/// # Example
///
/// ```
/// use wmatch_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 4);
/// g.add_edge(1, 2, 2);
/// let csr = g.csr();
/// assert_eq!(csr.neighbors(1), &[0, 2]);
/// assert_eq!(csr.edge_ids(1), &[0, 1]);
/// assert_eq!(csr.degree(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CsrView {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`edge_ids` for `v`.
    offsets: Vec<u32>,
    /// Neighbour endpoint per incidence, with multiplicity for parallel
    /// edges.
    targets: Vec<Vertex>,
    /// Edge index (into the graph's insertion-ordered edge list) per
    /// incidence.
    edge_ids: Vec<u32>,
    /// Per-bucket write cursor of the last (re)build, kept so a recycled
    /// view rebuilds without allocating.
    cursor: Vec<u32>,
}

impl PartialEq for CsrView {
    fn eq(&self, other: &Self) -> bool {
        // the cursor is build-time scratch, not part of the view
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.edge_ids == other.edge_ids
    }
}

impl Eq for CsrView {}

impl CsrView {
    /// Builds the view from an edge list over `n` vertices with a counting
    /// sort: two passes over the incidences, three flat allocations, no
    /// per-vertex heap cells. Incidence `2i` is edge `i` seen from `u`,
    /// `2i + 1` from `v`, so per-bucket stability is insertion order.
    pub(crate) fn build(n: usize, edges: &[Edge]) -> Self {
        let mut view = CsrView {
            offsets: Vec::new(),
            targets: Vec::new(),
            edge_ids: Vec::new(),
            cursor: Vec::new(),
        };
        view.rebuild(n, edges);
        view
    }

    /// Rebuilds the view in place, reusing the backing arrays — the
    /// recycling path behind [`Graph::csr`](crate::Graph::csr): once the
    /// buffers have grown to a graph's incidence count, invalidate +
    /// rebuild cycles touch the allocator only to grow, never at steady
    /// state. Produces exactly the arrays [`CsrView::build`] would.
    pub(crate) fn rebuild(&mut self, n: usize, edges: &[Edge]) {
        let len = 2 * edges.len();
        assert!(
            len <= u32::MAX as usize,
            "item count exceeds the u32 index space"
        );
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for e in edges {
            self.offsets[e.u as usize + 1] += 1;
            self.offsets[e.v as usize + 1] += 1;
        }
        for b in 0..n {
            self.offsets[b + 1] += self.offsets[b];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n]);
        self.targets.clear();
        self.targets.resize(len, 0);
        self.edge_ids.clear();
        self.edge_ids.resize(len, 0);
        // scatter pass in incidence order (edge i from u, then from v):
        // per-bucket stability is insertion order, as in `bucket_stable`
        for (i, e) in edges.iter().enumerate() {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let c = &mut self.cursor[from as usize];
                self.targets[*c as usize] = to;
                self.edge_ids[*c as usize] = i as u32;
                *c += 1;
            }
        }
    }

    /// Number of vertices covered by the view.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The neighbours of `v` in insertion order (with multiplicity for
    /// parallel edges).
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.targets[self.range(v)]
    }

    /// The indices of the edges incident to `v`, in insertion order.
    #[inline]
    pub fn edge_ids(&self, v: Vertex) -> &[u32] {
        &self.edge_ids[self.range(v)]
    }

    /// Iterator over `(edge_index, neighbour)` pairs incident to `v`.
    #[inline]
    pub fn incidences(&self, v: Vertex) -> impl Iterator<Item = (usize, Vertex)> + '_ {
        let r = self.range(v);
        self.edge_ids[r.clone()]
            .iter()
            .zip(&self.targets[r])
            .map(|(&i, &t)| (i as usize, t))
    }

    #[inline]
    fn range(&self, v: Vertex) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_insertion_order_per_vertex() {
        let edges = vec![
            Edge::new(0, 1, 1),
            Edge::new(2, 0, 1),
            Edge::new(0, 3, 1),
            Edge::new(1, 2, 1),
        ];
        let csr = CsrView::build(4, &edges);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.edge_ids(0), &[0, 1, 2]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.edge_ids(2), &[1, 3]);
        assert_eq!(csr.degree(3), 1);
        let inc: Vec<_> = csr.incidences(1).collect();
        assert_eq!(inc, vec![(0, 0), (3, 2)]);
    }

    #[test]
    fn parallel_edges_keep_multiplicity() {
        let edges = vec![Edge::new(0, 1, 1), Edge::new(1, 0, 2)];
        let csr = CsrView::build(2, &edges);
        assert_eq!(csr.neighbors(0), &[1, 1]);
        assert_eq!(csr.edge_ids(0), &[0, 1]);
        assert_eq!(csr.degree(1), 2);
    }

    #[test]
    fn empty_and_isolated() {
        let csr = CsrView::build(3, &[]);
        assert_eq!(csr.vertex_count(), 3);
        for v in 0..3 {
            assert!(csr.neighbors(v).is_empty());
            assert_eq!(csr.degree(v), 0);
        }
    }
}
