//! Graph and matching substrate for the `wmatch` workspace.
//!
//! This crate provides everything the algorithms in
//! [*Weighted Matchings via Unweighted Augmentations*](https://arxiv.org/abs/1811.02760)
//! (Gamlath, Kale, Mitrović, Svensson — PODC 2019) are built on:
//!
//! * [`Graph`] / [`Edge`] — undirected graphs with positive integer edge
//!   weights (the paper's model: weights are positive integers bounded by
//!   `poly(n)`),
//! * [`Matching`] — a matching with O(1) mate queries and weight tracking,
//! * [`alternating`] — alternating paths/cycles, matching neighbourhoods and
//!   augmentation gains (Definitions 4.2–4.5 of the paper),
//! * [`generators`] — random and adversarial instance families, including the
//!   exact graphs from the paper's figures,
//! * [`exact`] — exact matching solvers used as ground truth: Hopcroft–Karp,
//!   Hungarian (successive shortest paths), unweighted blossom, and Galil's
//!   maximum-weight general matching,
//! * [`aug_search`] — exhaustive short-augmentation search used to verify
//!   Fact 1.3,
//! * [`csr`] / [`scratch`] — the flat hot-path substrate: cached CSR
//!   adjacency views ([`CsrView`]) and epoch-stamped scratch arenas
//!   ([`Scratch`]) that keep the per-round neighbourhood scans of
//!   Algorithm 3/4 allocation-free,
//! * [`pool`] — the persistent deterministic worker pool ([`WorkerPool`])
//!   behind every parallel layer: the Algorithm 3 class sweep, Algorithm 4
//!   candidate scoring, and the MPC simulator's per-machine rounds.
//!
//! # Example
//!
//! ```
//! use wmatch_graph::{Graph, Matching};
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1, 5);
//! g.add_edge(1, 2, 7);
//! g.add_edge(2, 3, 5);
//!
//! let mut m = Matching::new(g.vertex_count());
//! m.insert(g.edge(1)).unwrap(); // match {1,2} of weight 7
//! assert_eq!(m.weight(), 7);
//! assert_eq!(m.mate(1), Some(2));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod alternating;
pub mod aug_search;
pub mod csr;
pub mod edge;
pub mod error;
pub mod exact;
pub mod generators;
pub mod graph;
pub mod matching;
pub mod pool;
pub mod scratch;

pub use alternating::Augmentation;
pub use csr::CsrView;
pub use edge::{Edge, Vertex};
pub use error::GraphError;
pub use graph::Graph;
pub use matching::Matching;
pub use pool::WorkerPool;
pub use scratch::Scratch;

/// Total weight of a slice of edges as a wide integer (cannot overflow for
/// any realistic instance: `u64` weights summed into `i128`).
pub fn total_weight(edges: &[Edge]) -> i128 {
    edges.iter().map(|e| e.weight as i128).sum()
}
