//! Hungarian algorithm (Kuhn–Munkres with potentials): exact maximum-weight
//! bipartite matching in O(V³).
//!
//! Used as ground truth for the weighted bipartite experiments, and as an
//! independent cross-check of the general-graph solver
//! [`crate::exact::mwm_general`] on bipartite inputs.

use crate::edge::Vertex;
use crate::graph::Graph;
use crate::matching::Matching;

/// Computes an exact maximum-weight matching of the bipartite graph `g`
/// (not necessarily perfect or of maximum cardinality).
///
/// `side[v]` gives the side of `v`; every edge must cross sides. Missing
/// pairs are treated as weight-0 dummies, which is equivalent to allowing
/// vertices to stay unmatched — only genuinely profitable edges end up in
/// the result.
///
/// # Panics
///
/// Panics if `side.len() != g.vertex_count()` or some edge does not cross
/// the bipartition.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_weight_bipartite_matching};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 2, 3);
/// g.add_edge(0, 3, 9);
/// g.add_edge(1, 3, 8);
/// let side = vec![false, false, true, true];
/// let m = max_weight_bipartite_matching(&g, &side);
/// assert_eq!(m.weight(), 3 + 8);
/// ```
#[allow(clippy::needless_range_loop)]
pub fn max_weight_bipartite_matching(g: &Graph, side: &[bool]) -> Matching {
    let n = g.vertex_count();
    assert_eq!(side.len(), n, "side labels must cover all vertices");
    assert!(
        g.respects_bipartition(side).unwrap(),
        "graph is not bipartite under the given sides"
    );
    let lefts: Vec<Vertex> = (0..n as Vertex).filter(|&v| !side[v as usize]).collect();
    let rights: Vec<Vertex> = (0..n as Vertex).filter(|&v| side[v as usize]).collect();
    let sz = lefts.len().max(rights.len());
    if sz == 0 {
        return Matching::new(n);
    }
    // position of each vertex on its side
    let mut lpos = vec![usize::MAX; n];
    let mut rpos = vec![usize::MAX; n];
    for (i, &v) in lefts.iter().enumerate() {
        lpos[v as usize] = i;
    }
    for (j, &v) in rights.iter().enumerate() {
        rpos[v as usize] = j;
    }
    // dense profit matrix (parallel edges: keep the best), padded to sz×sz
    let mut profit = vec![vec![0i64; sz]; sz];
    let mut best_edge = vec![vec![usize::MAX; sz]; sz];
    for (idx, e) in g.edges().iter().enumerate() {
        let (l, r) = if !side[e.u as usize] {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        let (i, j) = (lpos[l as usize], rpos[r as usize]);
        if (e.weight as i64) > profit[i][j]
            || (best_edge[i][j] == usize::MAX && e.weight as i64 >= profit[i][j])
        {
            profit[i][j] = e.weight as i64;
            best_edge[i][j] = idx;
        }
    }
    // Kuhn–Munkres on cost = -profit (1-indexed classical formulation).
    const INF: i64 = i64::MAX / 4;
    let a = |i: usize, j: usize| -> i64 { -profit[i - 1][j - 1] };
    let mut u = vec![0i64; sz + 1];
    let mut v = vec![0i64; sz + 1];
    let mut p = vec![0usize; sz + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; sz + 1];
    for i in 1..=sz {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; sz + 1];
        let mut used = vec![false; sz + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=sz {
                if !used[j] {
                    let cur = a(i0, j) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=sz {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    // extract: column j assigned to row p[j]; keep only real profitable edges
    let mut m = Matching::new(n);
    for j in 1..=sz {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (ri, rj) = (i - 1, j - 1);
        if ri < lefts.len() && rj < rights.len() && best_edge[ri][rj] != usize::MAX {
            let e = g.edge(best_edge[ri][rj]);
            if e.weight > 0 {
                m.insert(e).expect("assignment is disjoint");
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force::max_weight_matching_brute_force;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_profitable_assignment() {
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 3);
        g.add_edge(0, 3, 9);
        g.add_edge(1, 3, 8);
        let m = max_weight_bipartite_matching(&g, &[false, false, true, true]);
        assert_eq!(m.weight(), 11);
        m.validate(Some(&g)).unwrap();
    }

    #[test]
    fn may_leave_vertices_unmatched() {
        // matching both left vertices is possible but worse than one heavy edge
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 10);
        g.add_edge(1, 2, 9);
        g.add_edge(1, 3, 1);
        // option A: {0-2} + {1-3} = 11; option B: {1-2} = 9 -> A wins
        let m = max_weight_bipartite_matching(&g, &[false, false, true, true]);
        assert_eq!(m.weight(), 11);
        // and if the side edge is worthless enough, drop it
        let mut g2 = Graph::new(4);
        g2.add_edge(0, 2, 10);
        g2.add_edge(1, 2, 9);
        let m2 = max_weight_bipartite_matching(&g2, &[false, false, true, true]);
        assert_eq!(m2.weight(), 10);
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn rectangular_sides() {
        let mut g = Graph::new(5);
        g.add_edge(0, 3, 4);
        g.add_edge(1, 3, 7);
        g.add_edge(2, 4, 2);
        let side = vec![false, false, false, true, true];
        let m = max_weight_bipartite_matching(&g, &side);
        assert_eq!(m.weight(), 9);
    }

    #[test]
    fn agrees_with_brute_force_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..80 {
            let nl = 2 + trial % 5;
            let nr = 2 + (trial / 2) % 5;
            let (g, side) = generators::random_bipartite(
                nl,
                nr,
                0.5,
                WeightModel::Uniform { lo: 1, hi: 30 },
                &mut rng,
            );
            let hung = max_weight_bipartite_matching(&g, &side);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(hung.weight(), brute.weight(), "trial {trial}");
            hung.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn parallel_edges_use_best() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 8);
        g.add_edge(0, 1, 5);
        let m = max_weight_bipartite_matching(&g, &[false, true]);
        assert_eq!(m.weight(), 8);
    }

    #[test]
    fn empty_sides() {
        let g = Graph::new(0);
        let m = max_weight_bipartite_matching(&g, &[]);
        assert!(m.is_empty());
        let g = Graph::new(3);
        let m = max_weight_bipartite_matching(&g, &[false, false, false]);
        assert!(m.is_empty());
    }
}
