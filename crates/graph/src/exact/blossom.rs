//! Edmonds' blossom algorithm: maximum-cardinality matching in general
//! graphs, O(V³).
//!
//! Used as ground truth for unweighted experiments on non-bipartite
//! instances (Section 3.1 of the paper works on general graphs), and by the
//! 0.506-approximation algorithm's "S₁" branch which computes a maximum
//! matching among the stored free-free edges.

use crate::edge::Vertex;
use crate::graph::Graph;
use crate::matching::Matching;

const NONE: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of an arbitrary graph.
///
/// Edge weights are ignored for optimization; the returned matching carries
/// real graph edges (so its `weight()` reflects actual edge weights).
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_cardinality_matching};
///
/// // a triangle plus a pendant: maximum matching has 2 edges
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 1);
/// g.add_edge(1, 2, 1);
/// g.add_edge(2, 0, 1);
/// g.add_edge(2, 3, 1);
/// assert_eq!(max_cardinality_matching(&g).len(), 2);
/// ```
pub fn max_cardinality_matching(g: &Graph) -> Matching {
    max_cardinality_matching_from(g, Matching::new(g.vertex_count()))
}

/// Like [`max_cardinality_matching`] but warm-started from `init`.
///
/// # Panics
///
/// Panics if `init` covers a different vertex count than `g`.
#[allow(clippy::needless_range_loop)]
pub fn max_cardinality_matching_from(g: &Graph, init: Matching) -> Matching {
    let n = g.vertex_count();
    assert_eq!(
        init.vertex_count(),
        n,
        "initial matching has wrong vertex count"
    );
    let mut adj: Vec<Vec<(Vertex, usize)>> = vec![Vec::new(); n];
    for (idx, e) in g.edges().iter().enumerate() {
        adj[e.u as usize].push((e.v, idx));
        adj[e.v as usize].push((e.u, idx));
    }

    // mate[v]: matched neighbour or NONE; edge_of[v]: index of matched edge
    let mut mate = vec![NONE; n];
    let mut edge_of = vec![usize::MAX; n];
    for me in init.iter() {
        let idx = g
            .incident(me.u)
            .find(|(_, ge)| ge.same_endpoints(&me))
            .map(|(i, _)| i)
            .expect("initial matching edge must exist in graph");
        mate[me.u as usize] = me.v;
        mate[me.v as usize] = me.u;
        edge_of[me.u as usize] = idx;
        edge_of[me.v as usize] = idx;
    }

    let mut p = vec![NONE; n]; // BFS tree parent (vertex on the even side)
    let mut base: Vec<u32> = (0..n as u32).collect();
    let mut q: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut used = vec![false; n];
    let mut blossom = vec![false; n];

    fn lca(n: usize, mate: &[u32], base: &[u32], p: &[u32], mut a: u32, mut b: u32) -> u32 {
        let mut used_path = vec![false; n];
        loop {
            a = base[a as usize];
            used_path[a as usize] = true;
            if mate[a as usize] == NONE {
                break;
            }
            a = p[mate[a as usize] as usize];
        }
        loop {
            b = base[b as usize];
            if used_path[b as usize] {
                return b;
            }
            b = p[mate[b as usize] as usize];
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)]
    fn mark_path(
        mate: &[u32],
        base: &[u32],
        blossom: &mut [bool],
        p: &mut [u32],
        mut v: u32,
        b: u32,
        mut child: u32,
    ) {
        while base[v as usize] != b {
            blossom[base[v as usize] as usize] = true;
            blossom[base[mate[v as usize] as usize] as usize] = true;
            p[v as usize] = child;
            child = mate[v as usize];
            v = p[mate[v as usize] as usize];
        }
    }

    // find an augmenting path from root; returns its free endpoint or NONE
    let mut find_path = |root: u32,
                         mate: &mut Vec<u32>,
                         p: &mut Vec<u32>,
                         base: &mut Vec<u32>,
                         used: &mut Vec<bool>,
                         blossom: &mut Vec<bool>|
     -> u32 {
        used.iter_mut().for_each(|x| *x = false);
        p.iter_mut().for_each(|x| *x = NONE);
        for (i, b) in base.iter_mut().enumerate() {
            *b = i as u32;
        }
        used[root as usize] = true;
        q.clear();
        q.push_back(root);
        while let Some(v) = q.pop_front() {
            for i in 0..adj[v as usize].len() {
                let (to, _) = adj[v as usize][i];
                if base[v as usize] == base[to as usize] || mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (mate[to as usize] != NONE && p[mate[to as usize] as usize] != NONE)
                {
                    // blossom found: contract
                    let curbase = lca(n, mate, base, p, v, to);
                    blossom.iter_mut().for_each(|x| *x = false);
                    mark_path(mate, base, blossom, p, v, curbase, to);
                    mark_path(mate, base, blossom, p, to, curbase, v);
                    for u in 0..n as u32 {
                        if blossom[base[u as usize] as usize] {
                            base[u as usize] = curbase;
                            if !used[u as usize] {
                                used[u as usize] = true;
                                q.push_back(u);
                            }
                        }
                    }
                } else if p[to as usize] == NONE {
                    p[to as usize] = v;
                    if mate[to as usize] == NONE {
                        return to; // augmenting path found
                    }
                    used[mate[to as usize] as usize] = true;
                    q.push_back(mate[to as usize]);
                }
            }
        }
        NONE
    };

    for root in 0..n as u32 {
        if mate[root as usize] != NONE {
            continue;
        }
        let v = find_path(root, &mut mate, &mut p, &mut base, &mut used, &mut blossom);
        if v == NONE {
            continue;
        }
        // flip matching along the path
        let mut v = v;
        while v != NONE {
            let pv = p[v as usize];
            let ppv = mate[pv as usize];
            mate[v as usize] = pv;
            mate[pv as usize] = v;
            v = ppv;
        }
    }

    // rebuild edge_of from mate using any connecting edge
    let mut m = Matching::new(n);
    for v in 0..n as u32 {
        let w = mate[v as usize];
        if w != NONE && v < w {
            let e = g
                .incident(v)
                .map(|(_, e)| e)
                .find(|e| e.touches(w))
                .expect("mate implies an edge");
            m.insert(e).expect("mates are disjoint");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force::max_weight_matching_brute_force;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn odd_cycle_matches_floor_half() {
        let g = generators::cycle_graph(&[1, 1, 1, 1, 1]);
        assert_eq!(max_cardinality_matching(&g).len(), 2);
        let g7 = generators::cycle_graph(&[1; 7]);
        assert_eq!(max_cardinality_matching(&g7).len(), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // outer 5-cycle, inner 5-star, spokes
        let mut g = Graph::new(10);
        for i in 0..5u32 {
            g.add_edge(i, (i + 1) % 5, 1); // outer
            g.add_edge(5 + i, 5 + (i + 2) % 5, 1); // inner pentagram
            g.add_edge(i, 5 + i, 1); // spokes
        }
        assert_eq!(max_cardinality_matching(&g).len(), 5);
    }

    #[test]
    fn blossom_inside_blossom() {
        // two triangles joined by a path: needs contraction to augment
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 1);
        g.add_edge(4, 5, 1);
        g.add_edge(5, 6, 1);
        g.add_edge(6, 4, 1);
        g.add_edge(6, 7, 1);
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 4);
        m.validate(Some(&g)).unwrap();
    }

    #[test]
    fn warm_start_equals_cold_start() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = generators::gnp(14, 0.3, WeightModel::Unit, &mut rng);
            let cold = max_cardinality_matching(&g);
            let mut greedy = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = greedy.insert(*e);
            }
            let warm = max_cardinality_matching_from(&g, greedy);
            assert_eq!(cold.len(), warm.len());
            warm.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..60 {
            let n = 4 + trial % 7;
            let g = generators::gnp(n, 0.45, WeightModel::Unit, &mut rng);
            let ours = max_cardinality_matching(&g);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(ours.len() as i128, brute.weight(), "trial {trial}: {g}");
        }
    }

    #[test]
    fn agrees_with_petgraph_on_general_graphs() {
        use petgraph::graph::UnGraph;
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..30 {
            let n = 5 + trial % 9;
            let g = generators::gnp(n, 0.4, WeightModel::Unit, &mut rng);
            let ours = max_cardinality_matching(&g);
            let mut pg = UnGraph::<(), ()>::new_undirected();
            let nodes: Vec<_> = (0..n).map(|_| pg.add_node(())).collect();
            for e in g.edges() {
                pg.add_edge(nodes[e.u as usize], nodes[e.v as usize], ());
            }
            let theirs = petgraph::algo::matching::maximum_matching(&pg);
            assert_eq!(ours.len(), theirs.edges().count(), "trial {trial}");
        }
    }

    #[test]
    fn empty_and_single_edge() {
        let g = Graph::new(3);
        assert!(max_cardinality_matching(&g).is_empty());
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 7);
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 1);
        assert_eq!(m.weight(), 7);
    }
}
