//! Exact maximum-weight matching in **general** graphs, O(V³).
//!
//! This is the primal–dual blossom algorithm of Galil ("Efficient
//! algorithms for finding maximum matching in graphs", ACM Computing
//! Surveys 1986), in the formulation popularized by Joris van Rantwijk's
//! well-known `mwmatching.py` reference implementation (also the basis of
//! NetworkX's `max_weight_matching`). The port keeps the original's
//! structure and terminology (stages, S/T labels, blossom expansion, the
//! four dual-update types) so it can be audited against the reference.
//!
//! With integer edge weights all computations are exact integer arithmetic:
//! slacks are computed as `du[i] + du[j] - 2·w(i,j)`, which keeps every dual
//! variable integral (this is the classic "double the weights" device).
//!
//! The solver is the ground truth for every weighted experiment on general
//! graphs; it is validated against [`crate::exact::brute_force`] and, on
//! bipartite inputs, against [`crate::exact::hungarian`].

use crate::graph::Graph;
use crate::matching::Matching;

const NONE: i32 = -1;

/// Computes an exact maximum-weight matching of an arbitrary graph.
///
/// The matching maximizes total weight (it is *not* constrained to maximum
/// cardinality; weight-0 edges are never needed).
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_weight_matching};
///
/// // the paper's 4-cycle (3,4,3,4): optimum takes both weight-4 edges
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 3);
/// g.add_edge(1, 2, 4);
/// g.add_edge(2, 3, 3);
/// g.add_edge(3, 0, 4);
/// assert_eq!(max_weight_matching(&g).weight(), 8);
/// ```
pub fn max_weight_matching(g: &Graph) -> Matching {
    let n = g.vertex_count();
    if n == 0 || g.edge_count() == 0 {
        return Matching::new(n);
    }
    let mut solver = Solver::new(g);
    solver.solve();
    let mut m = Matching::new(n);
    for v in 0..n {
        let p = solver.mate[v];
        if p != NONE {
            let k = (p / 2) as usize;
            let e = g.edge(k);
            debug_assert!(e.touches(v as u32));
            if !m.contains(&e) && e.weight > 0 {
                m.insert(e).expect("mates are vertex-disjoint");
            }
        }
    }
    m
}

struct Solver<'g> {
    g: &'g Graph,
    nvertex: usize,
    nedge: usize,
    /// endpoint[p]: vertex at endpoint p of edge p/2 (p even -> u, odd -> v)
    endpoint: Vec<i32>,
    /// neighbend[v]: endpoints p such that endpoint[p] is a neighbour of v
    /// through edge p/2 (i.e. endpoint[p ^ 1] == v)
    neighbend: Vec<Vec<i32>>,
    /// mate[v]: remote endpoint index of v's matched edge, or NONE
    mate: Vec<i32>,
    /// label[b] for vertex or blossom b: 0 free, 1 = S, 2 = T (5 = S marked
    /// during scan_blossom)
    label: Vec<i32>,
    /// labelend[b]: endpoint through which b acquired its label
    labelend: Vec<i32>,
    /// inblossom[v]: top-level blossom containing vertex v
    inblossom: Vec<i32>,
    blossomparent: Vec<i32>,
    blossomchilds: Vec<Option<Vec<i32>>>,
    blossombase: Vec<i32>,
    blossomendps: Vec<Option<Vec<i32>>>,
    unusedblossoms: Vec<i32>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<i32>,
}

impl<'g> Solver<'g> {
    fn new(g: &'g Graph) -> Self {
        let nvertex = g.vertex_count();
        let nedge = g.edge_count();
        let maxweight = g.max_weight() as i64;
        let mut endpoint = Vec::with_capacity(2 * nedge);
        for e in g.edges() {
            endpoint.push(e.u as i32);
            endpoint.push(e.v as i32);
        }
        let mut neighbend: Vec<Vec<i32>> = vec![Vec::new(); nvertex];
        for (k, e) in g.edges().iter().enumerate() {
            neighbend[e.u as usize].push(2 * k as i32 + 1);
            neighbend[e.v as usize].push(2 * k as i32);
        }
        let mut dualvar = vec![maxweight; nvertex];
        dualvar.extend(std::iter::repeat_n(0, nvertex));
        Solver {
            g,
            nvertex,
            nedge,
            endpoint,
            neighbend,
            mate: vec![NONE; nvertex],
            label: vec![0; 2 * nvertex],
            labelend: vec![NONE; 2 * nvertex],
            inblossom: (0..nvertex as i32).collect(),
            blossomparent: vec![NONE; 2 * nvertex],
            blossomchilds: vec![None; 2 * nvertex],
            blossombase: (0..nvertex as i32)
                .chain(std::iter::repeat_n(NONE, nvertex))
                .collect(),
            blossomendps: vec![None; 2 * nvertex],
            unusedblossoms: (nvertex as i32..2 * nvertex as i32).collect(),
            dualvar,
            allowedge: vec![false; nedge],
            queue: Vec::new(),
        }
    }

    #[inline]
    fn edge_w(&self, k: usize) -> i64 {
        self.g.edge(k).weight as i64
    }

    /// Slack of edge k: du[i] + du[j] - 2·w. Non-negative for all edges at
    /// optimality; zero on matched edges.
    #[inline]
    fn slack(&self, k: usize) -> i64 {
        let e = self.g.edge(k);
        self.dualvar[e.u as usize] + self.dualvar[e.v as usize] - 2 * self.edge_w(k)
    }

    /// All vertices (leaves) contained in blossom b.
    fn blossom_leaves(&self, b: i32) -> Vec<i32> {
        let mut out = Vec::new();
        let mut stack = vec![b];
        while let Some(t) = stack.pop() {
            if (t as usize) < self.nvertex {
                out.push(t);
            } else {
                for &c in self.blossomchilds[t as usize]
                    .as_ref()
                    .expect("blossom has children")
                {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Assign label t to the top-level blossom containing vertex w.
    fn assign_label(&mut self, w: i32, t: i32, p: i32) {
        let b = self.inblossom[w as usize];
        debug_assert!(self.label[w as usize] == 0 && self.label[b as usize] == 0);
        self.label[w as usize] = t;
        self.label[b as usize] = t;
        self.labelend[w as usize] = p;
        self.labelend[b as usize] = p;
        if t == 1 {
            // S-blossom: all its vertices become scan candidates
            let leaves = self.blossom_leaves(b);
            self.queue.extend(leaves);
        } else if t == 2 {
            // T-blossom: its base's mate becomes an S-vertex
            let base = self.blossombase[b as usize];
            debug_assert!(self.mate[base as usize] >= 0);
            let mate_ep = self.mate[base as usize];
            self.assign_label(self.endpoint[mate_ep as usize], 1, mate_ep ^ 1);
        }
    }

    /// Trace back from v and w to find the lowest common S-ancestor, or NONE
    /// if an augmenting path was found instead of a blossom.
    fn scan_blossom(&mut self, v: i32, w: i32) -> i32 {
        let mut path = Vec::new();
        let mut base = NONE;
        let (mut v, mut w) = (v, w);
        while v != NONE || w != NONE {
            let b = self.inblossom[v as usize];
            if self.label[b as usize] & 4 != 0 {
                base = self.blossombase[b as usize];
                break;
            }
            debug_assert_eq!(self.label[b as usize], 1);
            path.push(b);
            self.label[b as usize] = 5;
            debug_assert_eq!(
                self.labelend[b as usize],
                self.mate[self.blossombase[b as usize] as usize]
            );
            if self.labelend[b as usize] == NONE {
                v = NONE; // reached a root
            } else {
                v = self.endpoint[self.labelend[b as usize] as usize];
                let b2 = self.inblossom[v as usize];
                debug_assert_eq!(self.label[b2 as usize], 2);
                debug_assert!(self.labelend[b2 as usize] >= 0);
                v = self.endpoint[self.labelend[b2 as usize] as usize];
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label[b as usize] = 1;
        }
        base
    }

    /// Construct a new blossom with the given base, through S-vertices
    /// connected by edge k.
    fn add_blossom(&mut self, base: i32, k: usize) {
        let e = self.g.edge(k);
        let (v, w) = (e.u as i32, e.v as i32);
        let bb = self.inblossom[base as usize];
        let mut bv = self.inblossom[v as usize];
        let mut bw = self.inblossom[w as usize];
        let b = self
            .unusedblossoms
            .pop()
            .expect("a free blossom slot always exists");
        self.blossombase[b as usize] = base;
        self.blossomparent[b as usize] = NONE;
        self.blossomparent[bb as usize] = b;
        let mut path = Vec::new();
        let mut endps = Vec::new();
        // trace from v back to the base
        let mut vv = v;
        while bv != bb {
            self.blossomparent[bv as usize] = b;
            path.push(bv);
            endps.push(self.labelend[bv as usize]);
            debug_assert!(
                self.label[bv as usize] == 2
                    || (self.label[bv as usize] == 1
                        && self.labelend[bv as usize]
                            == self.mate[self.blossombase[bv as usize] as usize])
            );
            debug_assert!(self.labelend[bv as usize] >= 0);
            vv = self.endpoint[self.labelend[bv as usize] as usize];
            bv = self.inblossom[vv as usize];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k as i32);
        // trace from w back to the base
        let mut ww = w;
        while bw != bb {
            self.blossomparent[bw as usize] = b;
            path.push(bw);
            endps.push(self.labelend[bw as usize] ^ 1);
            debug_assert!(
                self.label[bw as usize] == 2
                    || (self.label[bw as usize] == 1
                        && self.labelend[bw as usize]
                            == self.mate[self.blossombase[bw as usize] as usize])
            );
            debug_assert!(self.labelend[bw as usize] >= 0);
            ww = self.endpoint[self.labelend[bw as usize] as usize];
            bw = self.inblossom[ww as usize];
        }
        let _ = (vv, ww);
        debug_assert_eq!(self.label[bb as usize], 1);
        self.label[b as usize] = 1;
        self.labelend[b as usize] = self.labelend[bb as usize];
        self.dualvar[b as usize] = 0;
        self.blossomchilds[b as usize] = Some(path);
        self.blossomendps[b as usize] = Some(endps);
        for leaf in self.blossom_leaves(b) {
            if self.label[self.inblossom[leaf as usize] as usize] == 2 {
                // former T-vertex becomes an S-vertex: schedule for scanning
                self.queue.push(leaf);
            }
            self.inblossom[leaf as usize] = b;
        }
    }

    /// Expand blossom b, restoring its children to top level. If
    /// `endstage` is false, b is a T-blossom whose dual reached zero and the
    /// path through it must be relabeled.
    fn expand_blossom(&mut self, b: i32, endstage: bool) {
        let childs = self.blossomchilds[b as usize]
            .clone()
            .expect("expanding a real blossom");
        for &s in &childs {
            self.blossomparent[s as usize] = NONE;
            if (s as usize) < self.nvertex {
                self.inblossom[s as usize] = s;
            } else if endstage && self.dualvar[s as usize] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                for leaf in self.blossom_leaves(s) {
                    self.inblossom[leaf as usize] = s;
                }
            }
        }
        if !endstage && self.label[b as usize] == 2 {
            // Relabel the path from the entry child to the base.
            let entrychild =
                self.inblossom[self.endpoint[(self.labelend[b as usize] ^ 1) as usize] as usize];
            let len = childs.len() as i32;
            let at = |j: i32| -> i32 { childs[(((j % len) + len) % len) as usize] };
            let endps = self.blossomendps[b as usize]
                .clone()
                .expect("blossom endps");
            let ep_at = |j: i32| -> i32 {
                let l = endps.len() as i32;
                endps[(((j % l) + l) % l) as usize]
            };
            let mut j = childs
                .iter()
                .position(|&c| c == entrychild)
                .expect("entry child") as i32;
            let (jstep, endptrick) = if j & 1 != 0 {
                j -= len;
                (1i32, 0i32)
            } else {
                (-1i32, 1i32)
            };
            let mut p = self.labelend[b as usize];
            while j != 0 {
                // relabel the T-sub-blossom
                self.label[self.endpoint[(p ^ 1) as usize] as usize] = 0;
                let q = ep_at(j - endptrick) ^ endptrick ^ 1;
                self.label[self.endpoint[q as usize] as usize] = 0;
                let t_entry = self.endpoint[(p ^ 1) as usize];
                self.assign_label(t_entry, 2, p);
                // step to the next S-sub-blossom and note its forward edge
                self.allowedge[(ep_at(j - endptrick) / 2) as usize] = true;
                j += jstep;
                p = ep_at(j - endptrick) ^ endptrick;
                // step to the next T-sub-blossom
                self.allowedge[(p / 2) as usize] = true;
                j += jstep;
            }
            // relabel the base T-sub-blossom WITHOUT stepping through to its
            // mate (so the base gets a T label without propagation)
            let bv = at(j);
            let ep = self.endpoint[(p ^ 1) as usize];
            self.label[ep as usize] = 2;
            self.label[bv as usize] = 2;
            self.labelend[ep as usize] = p;
            self.labelend[bv as usize] = p;
            // continue along the blossom until we get back to entrychild;
            // leave remaining sub-blossoms unlabeled
            j += jstep;
            while at(j) != entrychild {
                let bv = at(j);
                if self.label[bv as usize] == 1 {
                    j += jstep;
                    continue;
                }
                let mut vfound = NONE;
                for v in self.blossom_leaves(bv) {
                    if self.label[v as usize] != 0 {
                        vfound = v;
                        break;
                    }
                }
                if vfound != NONE {
                    debug_assert_eq!(self.label[vfound as usize], 2);
                    debug_assert_eq!(self.inblossom[vfound as usize], bv);
                    self.label[vfound as usize] = 0;
                    let base_mate = self.mate[self.blossombase[bv as usize] as usize];
                    self.label[self.endpoint[base_mate as usize] as usize] = 0;
                    let le = self.labelend[vfound as usize];
                    self.assign_label(vfound, 2, le);
                }
                j += jstep;
            }
        }
        // recycle the blossom slot
        self.label[b as usize] = NONE;
        self.labelend[b as usize] = NONE;
        self.blossomchilds[b as usize] = None;
        self.blossomendps[b as usize] = None;
        self.blossombase[b as usize] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swap matched/unmatched edges over an alternating path through blossom
    /// b between vertex v and the base vertex.
    fn augment_blossom(&mut self, b: i32, v: i32) {
        // find the immediate child of b containing v
        let mut t = v;
        while self.blossomparent[t as usize] != b {
            t = self.blossomparent[t as usize];
        }
        if t as usize >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let childs = self.blossomchilds[b as usize]
            .clone()
            .expect("blossom childs");
        let endps = self.blossomendps[b as usize]
            .clone()
            .expect("blossom endps");
        let len = childs.len() as i32;
        let at = |j: i32| -> i32 { childs[(((j % len) + len) % len) as usize] };
        let ep_at = |j: i32| -> i32 {
            let l = endps.len() as i32;
            endps[(((j % l) + l) % l) as usize]
        };
        let i = childs
            .iter()
            .position(|&c| c == t)
            .expect("child containing v") as i32;
        let mut j = i;
        let (jstep, endptrick) = if i & 1 != 0 {
            j -= len;
            (1i32, 0i32)
        } else {
            (-1i32, 1i32)
        };
        while j != 0 {
            j += jstep;
            let tt = at(j);
            let p = ep_at(j - endptrick) ^ endptrick;
            if tt as usize >= self.nvertex {
                self.augment_blossom(tt, self.endpoint[p as usize]);
            }
            j += jstep;
            let tt = at(j);
            if tt as usize >= self.nvertex {
                self.augment_blossom(tt, self.endpoint[(p ^ 1) as usize]);
            }
            self.mate[self.endpoint[p as usize] as usize] = p ^ 1;
            self.mate[self.endpoint[(p ^ 1) as usize] as usize] = p;
        }
        // rotate the child list so that v's child becomes the base
        let iu = i as usize;
        let mut new_childs = childs[iu..].to_vec();
        new_childs.extend_from_slice(&childs[..iu]);
        let mut new_endps = endps[iu..].to_vec();
        new_endps.extend_from_slice(&endps[..iu]);
        self.blossombase[b as usize] = self.blossombase[new_childs[0] as usize];
        self.blossomchilds[b as usize] = Some(new_childs);
        self.blossomendps[b as usize] = Some(new_endps);
        debug_assert_eq!(self.blossombase[b as usize], v);
    }

    /// Swap matched/unmatched edges over the augmenting path through edge k.
    fn augment_matching(&mut self, k: usize) {
        let e = self.g.edge(k);
        let (v, w) = (e.u as i32, e.v as i32);
        for (s0, p0) in [(v, 2 * k as i32 + 1), (w, 2 * k as i32)] {
            let mut s = s0;
            let mut p = p0;
            loop {
                let bs = self.inblossom[s as usize];
                debug_assert_eq!(self.label[bs as usize], 1);
                debug_assert_eq!(
                    self.labelend[bs as usize],
                    self.mate[self.blossombase[bs as usize] as usize]
                );
                if bs as usize >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s as usize] = p;
                if self.labelend[bs as usize] == NONE {
                    break; // reached a single free vertex
                }
                let t = self.endpoint[self.labelend[bs as usize] as usize];
                let bt = self.inblossom[t as usize];
                debug_assert_eq!(self.label[bt as usize], 2);
                debug_assert!(self.labelend[bt as usize] >= 0);
                s = self.endpoint[self.labelend[bt as usize] as usize];
                let j = self.endpoint[(self.labelend[bt as usize] ^ 1) as usize];
                debug_assert_eq!(self.blossombase[bt as usize], t);
                if bt as usize >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j as usize] = self.labelend[bt as usize];
                p = self.labelend[bt as usize] ^ 1;
            }
        }
    }

    fn solve(&mut self) {
        for _stage in 0..self.nvertex {
            // stage initialization
            self.label.iter_mut().for_each(|x| *x = 0);
            self.allowedge.iter_mut().for_each(|x| *x = false);
            self.queue.clear();
            for v in 0..self.nvertex as i32 {
                if self.mate[v as usize] == NONE
                    && self.label[self.inblossom[v as usize] as usize] == 0
                {
                    self.assign_label(v, 1, NONE);
                }
            }
            let mut augmented = false;
            loop {
                // scan S-vertices
                while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label[self.inblossom[v as usize] as usize], 1);
                    let nbe = self.neighbend[v as usize].clone();
                    for p in nbe {
                        let k = (p / 2) as usize;
                        let w = self.endpoint[p as usize];
                        if self.inblossom[v as usize] == self.inblossom[w as usize] {
                            continue; // internal edge
                        }
                        if !self.allowedge[k] && self.slack(k) <= 0 {
                            self.allowedge[k] = true;
                        }
                        if self.allowedge[k] {
                            let bw = self.inblossom[w as usize];
                            if self.label[bw as usize] == 0 {
                                self.assign_label(w, 2, p ^ 1);
                            } else if self.label[bw as usize] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base >= 0 {
                                    self.add_blossom(base, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    break;
                                }
                            } else if self.label[w as usize] == 0 {
                                debug_assert_eq!(self.label[bw as usize], 2);
                                self.label[w as usize] = 2;
                                self.labelend[w as usize] = p ^ 1;
                            }
                        }
                    }
                    if augmented {
                        break;
                    }
                }
                if augmented {
                    break;
                }

                // no augmenting path under tight edges: compute dual update
                let mut deltatype = 1;
                let mut delta = *self.dualvar[..self.nvertex].iter().min().expect("n > 0");
                let mut deltaedge = usize::MAX;
                let mut deltablossom = NONE;

                for k in 0..self.nedge {
                    if self.allowedge[k] {
                        continue;
                    }
                    let e = self.g.edge(k);
                    let bi = self.inblossom[e.u as usize];
                    let bj = self.inblossom[e.v as usize];
                    if bi == bj {
                        continue;
                    }
                    let (li, lj) = (self.label[bi as usize], self.label[bj as usize]);
                    if (li == 1 && lj == 0) || (li == 0 && lj == 1) {
                        // delta2: S-vertex to free vertex
                        let d = self.slack(k);
                        if d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = k;
                        }
                    } else if li == 1 && lj == 1 {
                        // delta3: S-blossom to S-blossom
                        let s = self.slack(k);
                        debug_assert!(s % 2 == 0, "S-S slack must stay even (integrality)");
                        let d = s / 2;
                        if d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = k;
                        }
                    }
                }
                // delta4: T-blossom with minimal dual
                for b in self.nvertex as i32..2 * self.nvertex as i32 {
                    if self.blossombase[b as usize] >= 0
                        && self.blossomparent[b as usize] == NONE
                        && self.label[b as usize] == 2
                        && self.dualvar[b as usize] < delta
                    {
                        delta = self.dualvar[b as usize];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }

                // apply the dual update
                for v in 0..self.nvertex {
                    match self.label[self.inblossom[v] as usize] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break, // optimum reached
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let e = self.g.edge(deltaedge);
                        let (mut i, j) = (e.u as i32, e.v as i32);
                        if self.label[self.inblossom[i as usize] as usize] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i as usize] as usize], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let e = self.g.edge(deltaedge);
                        debug_assert_eq!(self.label[self.inblossom[e.u as usize] as usize], 1);
                        self.queue.push(e.u as i32);
                    }
                    4 => self.expand_blossom(deltablossom, false),
                    _ => unreachable!(),
                }
            }
            if !augmented {
                break; // no further augmenting paths: globally optimal
            }
            // end of stage: expand all S-blossoms whose dual fell to zero
            for b in self.nvertex as i32..2 * self.nvertex as i32 {
                if self.blossomparent[b as usize] == NONE
                    && self.blossombase[b as usize] >= 0
                    && self.label[b as usize] == 1
                    && self.dualvar[b as usize] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force::max_weight_matching_brute_force;
    use crate::exact::hungarian::max_weight_bipartite_matching;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trivial_cases() {
        assert!(max_weight_matching(&Graph::new(0)).is_empty());
        assert!(max_weight_matching(&Graph::new(3)).is_empty());
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 9);
        assert_eq!(max_weight_matching(&g).weight(), 9);
    }

    #[test]
    fn path_prefers_outer_edges() {
        let g = generators::path_graph(&[5, 6, 5]);
        assert_eq!(max_weight_matching(&g).weight(), 10);
        let g = generators::path_graph(&[5, 11, 5]);
        assert_eq!(max_weight_matching(&g).weight(), 11);
    }

    #[test]
    fn four_cycle_examples() {
        let (g, _) = generators::four_cycle_3434();
        assert_eq!(max_weight_matching(&g).weight(), 8);
        let (g, m) = generators::four_cycle_eps(100);
        assert_eq!(m.weight(), 200);
        assert_eq!(max_weight_matching(&g).weight(), 202);
    }

    #[test]
    fn classic_mwmatching_regressions() {
        // These are test vectors from the reference implementation's suite.
        // 14_maxcard analog: weighted triangle + tail
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 11);
        g.add_edge(2, 3, 5);
        assert_eq!(max_weight_matching(&g).weight(), 11);

        // 16: create S-blossom and use it for augmentation
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 8);
        g.add_edge(0, 2, 9);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 3, 7);
        assert_eq!(max_weight_matching(&g).weight(), 15); // {0,1} + {2,3}

        // 18: create nested S-blossom and use for augmentation
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 9);
        g.add_edge(0, 2, 8);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 3, 5);
        g.add_edge(3, 4, 4);
        g.add_edge(0, 5, 3);
        let m = max_weight_matching(&g);
        // best: {1,2}=10 + {3,4}=4 + {0,5}=3 = 17
        assert_eq!(m.weight(), 17);

        // 20: create blossom, relabel as T-blossom, use for augmentation
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 9);
        g.add_edge(0, 2, 9);
        g.add_edge(1, 2, 10);
        g.add_edge(1, 3, 5);
        g.add_edge(3, 4, 17);
        g.add_edge(0, 5, 6);
        // wait for blossom-expansion coverage: optimum {0,5}? compute below
        let m = max_weight_matching(&g);
        let b = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), b.weight());

        // 23: create blossom, relabel as S, expand during augmentation
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 8);
        g.add_edge(0, 2, 8);
        g.add_edge(1, 2, 10);
        g.add_edge(1, 3, 12);
        g.add_edge(2, 4, 12);
        g.add_edge(3, 4, 14);
        g.add_edge(3, 5, 12);
        g.add_edge(4, 6, 12);
        g.add_edge(5, 6, 14);
        g.add_edge(6, 7, 12);
        let m = max_weight_matching(&g);
        let b = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), b.weight());
    }

    #[test]
    fn t_blossom_expansion_cases() {
        // from mwmatching test 30/31/32: create blossom, relabel as T in
        // more than one way, expand, augment
        for d in [0i64, 1, 2] {
            let mut g = Graph::new(9);
            g.add_edge(0, 1, 45);
            g.add_edge(0, 4, 45);
            g.add_edge(1, 2, 50);
            g.add_edge(2, 3, 45);
            g.add_edge(3, 4, 50);
            g.add_edge(0, 5, 30);
            g.add_edge(2, 8, 35);
            g.add_edge(3, 7, (35 + d) as u64);
            g.add_edge(4, 6, 26);
            let m = max_weight_matching(&g);
            let b = max_weight_matching_brute_force(&g);
            assert_eq!(m.weight(), b.weight(), "d={d}");
            m.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn nested_t_blossom_expansion() {
        // mwmatching test 34: nested S-blossom, relabel as T, expand
        let mut g = Graph::new(9);
        g.add_edge(0, 1, 40);
        g.add_edge(0, 2, 40);
        g.add_edge(1, 2, 60);
        g.add_edge(1, 3, 55);
        g.add_edge(2, 4, 55);
        g.add_edge(3, 4, 50);
        g.add_edge(0, 7, 15);
        g.add_edge(4, 6, 30);
        g.add_edge(6, 5, 10);
        g.add_edge(7, 8, 10);
        let m = max_weight_matching(&g);
        let b = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), b.weight());
    }

    #[test]
    fn agrees_with_brute_force_random_small() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..400 {
            let n = 2 + trial % 11;
            let p = 0.2 + 0.1 * ((trial / 7) % 8) as f64;
            let hi = 1 + rng.gen_range(1u64..30);
            let g = generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi }, &mut rng);
            let fast = max_weight_matching(&g);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(
                fast.weight(),
                brute.weight(),
                "trial {trial} n={n} p={p} hi={hi}"
            );
            fast.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    fn agrees_with_hungarian_on_bipartite() {
        let mut rng = StdRng::seed_from_u64(202);
        for trial in 0..100 {
            let nl = 2 + trial % 6;
            let nr = 2 + (trial / 3) % 6;
            let (g, side) = generators::random_bipartite(
                nl,
                nr,
                0.5,
                WeightModel::Uniform { lo: 1, hi: 50 },
                &mut rng,
            );
            let general = max_weight_matching(&g);
            let hung = max_weight_bipartite_matching(&g, &side);
            assert_eq!(general.weight(), hung.weight(), "trial {trial}");
        }
    }

    #[test]
    fn small_weights_force_ties_and_blossoms() {
        // tiny weights maximize tie-breaking and delta4 expansion traffic
        let mut rng = StdRng::seed_from_u64(303);
        for trial in 0..400 {
            let n = 4 + trial % 9;
            let g = generators::gnp(n, 0.5, WeightModel::Uniform { lo: 1, hi: 3 }, &mut rng);
            let fast = max_weight_matching(&g);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(fast.weight(), brute.weight(), "trial {trial} n={n}");
        }
    }

    #[test]
    fn dense_odd_cliques() {
        let mut rng = StdRng::seed_from_u64(404);
        for n in [3usize, 5, 7, 9, 11] {
            let g = generators::complete(n, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let fast = max_weight_matching(&g);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(fast.weight(), brute.weight(), "K_{n}");
        }
    }

    #[test]
    fn handles_larger_instances() {
        // sanity: runs at n=200 and beats a greedy lower bound
        let mut rng = StdRng::seed_from_u64(505);
        let g = generators::gnp(
            200,
            0.05,
            WeightModel::Uniform { lo: 1, hi: 1000 },
            &mut rng,
        );
        let m = max_weight_matching(&g);
        m.validate(Some(&g)).unwrap();
        // greedy by weight
        let mut edges: Vec<_> = g.edges().to_vec();
        edges.sort_by_key(|e| std::cmp::Reverse(e.weight));
        let mut greedy = Matching::new(g.vertex_count());
        for e in edges {
            let _ = greedy.insert(e);
        }
        assert!(m.weight() >= greedy.weight());
    }
}
