//! Hopcroft–Karp maximum-cardinality bipartite matching in O(E·√V).
//!
//! This is the offline (δ = 0) instantiation of the paper's
//! `Unw-Bip-Matching` black box: Algorithm 4 calls it on layered graphs.

use crate::edge::Vertex;
use crate::graph::Graph;
use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of the bipartite graph `g`.
///
/// `side[v]` gives the side of vertex `v`; every edge must cross sides.
/// Edge weights are ignored (the matching's reported weight uses the actual
/// edge weights, which is convenient when the caller wants `w(M)` of a
/// cardinality-optimal matching).
///
/// # Panics
///
/// Panics if `side.len() != g.vertex_count()` or some edge does not cross
/// the bipartition.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_bipartite_cardinality_matching};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 2, 1);
/// g.add_edge(0, 3, 1);
/// g.add_edge(1, 2, 1);
/// let side = vec![false, false, true, true];
/// let m = max_bipartite_cardinality_matching(&g, &side);
/// assert_eq!(m.len(), 2);
/// ```
pub fn max_bipartite_cardinality_matching(g: &Graph, side: &[bool]) -> Matching {
    max_bipartite_cardinality_matching_from(g, side, Matching::new(g.vertex_count()))
}

/// Like [`max_bipartite_cardinality_matching`], but warm-started from an
/// existing matching `init` (which must be a valid matching of `g`).
///
/// # Panics
///
/// See [`max_bipartite_cardinality_matching`]; additionally panics if
/// `init` is defined over a different vertex count.
pub fn max_bipartite_cardinality_matching_from(
    g: &Graph,
    side: &[bool],
    init: Matching,
) -> Matching {
    let n = g.vertex_count();
    assert_eq!(side.len(), n, "side labels must cover all vertices");
    assert_eq!(
        init.vertex_count(),
        n,
        "initial matching has wrong vertex count"
    );
    assert!(
        g.respects_bipartition(side).unwrap(),
        "graph is not bipartite under the given sides"
    );

    // adjacency from left vertices only: (right_vertex, edge_index)
    let mut adj: Vec<Vec<(Vertex, usize)>> = vec![Vec::new(); n];
    for (idx, e) in g.edges().iter().enumerate() {
        let (l, r) = if !side[e.u as usize] {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        adj[l as usize].push((r, idx));
    }

    // pair_of[v] = (mate, edge index) in current matching
    let mut pair: Vec<Option<(Vertex, usize)>> = vec![None; n];
    for me in init.iter() {
        let idx = g
            .incident(me.u)
            .find(|(_, ge)| ge.same_endpoints(&me))
            .map(|(i, _)| i)
            .expect("initial matching edge must exist in graph");
        pair[me.u as usize] = Some((me.v, idx));
        pair[me.v as usize] = Some((me.u, idx));
    }

    let lefts: Vec<Vertex> = (0..n as Vertex).filter(|&v| !side[v as usize]).collect();
    let mut dist: Vec<u32> = vec![INF; n];

    // BFS: layer the left vertices from the free ones.
    let bfs = |pair: &Vec<Option<(Vertex, usize)>>, dist: &mut Vec<u32>| -> bool {
        let mut queue = std::collections::VecDeque::new();
        for &u in &lefts {
            if pair[u as usize].is_none() {
                dist[u as usize] = 0;
                queue.push_back(u);
            } else {
                dist[u as usize] = INF;
            }
        }
        let mut reachable_free = false;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adj[u as usize] {
                match pair[v as usize] {
                    None => reachable_free = true,
                    Some((w, _)) => {
                        if dist[w as usize] == INF {
                            dist[w as usize] = dist[u as usize] + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        reachable_free
    };

    fn dfs(
        u: Vertex,
        adj: &[Vec<(Vertex, usize)>],
        pair: &mut Vec<Option<(Vertex, usize)>>,
        dist: &mut Vec<u32>,
    ) -> bool {
        for i in 0..adj[u as usize].len() {
            let (v, eidx) = adj[u as usize][i];
            let next = pair[v as usize];
            let ok = match next {
                None => true,
                Some((w, _)) => dist[w as usize] == dist[u as usize] + 1 && dfs(w, adj, pair, dist),
            };
            if ok {
                pair[u as usize] = Some((v, eidx));
                pair[v as usize] = Some((u, eidx));
                return true;
            }
        }
        dist[u as usize] = INF;
        false
    }

    while bfs(&pair, &mut dist) {
        for &u in &lefts {
            if pair[u as usize].is_none() {
                dfs(u, &adj, &mut pair, &mut dist);
            }
        }
    }

    let mut m = Matching::new(n);
    for &u in &lefts {
        if let Some((_, eidx)) = pair[u as usize] {
            m.insert(g.edge(eidx)).expect("pairs are disjoint");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn side_lr(nl: usize, n: usize) -> Vec<bool> {
        (0..n).map(|v| v >= nl).collect()
    }

    #[test]
    fn perfect_matching_on_complete_bipartite() {
        let mut g = Graph::new(6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                g.add_edge(u, v, 1);
            }
        }
        let m = max_bipartite_cardinality_matching(&g, &side_lr(3, 6));
        assert_eq!(m.len(), 3);
        m.validate(Some(&g)).unwrap();
    }

    #[test]
    fn hall_violator_limits_matching() {
        // three left vertices all adjacent only to one right vertex
        let mut g = Graph::new(4);
        for u in 0..3u32 {
            g.add_edge(u, 3, 1);
        }
        let m = max_bipartite_cardinality_matching(&g, &side_lr(3, 4));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn path_graph_alternation() {
        // path 0-2-1-3 as bipartite: left {0,1}, right {2,3}
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        let m = max_bipartite_cardinality_matching(&g, &side_lr(2, 4));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn warm_start_from_maximal_matching() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, side) =
            generators::random_bipartite(20, 20, 0.2, generators::WeightModel::Unit, &mut rng);
        let cold = max_bipartite_cardinality_matching(&g, &side);
        // greedy maximal as warm start
        let mut init = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = init.insert(*e);
        }
        let warm = max_bipartite_cardinality_matching_from(&g, &side, init);
        assert_eq!(cold.len(), warm.len());
        warm.validate(Some(&g)).unwrap();
    }

    #[test]
    fn agrees_with_petgraph_on_random_instances() {
        use petgraph::graph::UnGraph;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let nl = 3 + (trial % 7);
            let nr = 3 + (trial % 5);
            let (g, side) =
                generators::random_bipartite(nl, nr, 0.4, generators::WeightModel::Unit, &mut rng);
            let ours = max_bipartite_cardinality_matching(&g, &side);
            let mut pg = UnGraph::<(), ()>::new_undirected();
            let nodes: Vec<_> = (0..g.vertex_count()).map(|_| pg.add_node(())).collect();
            for e in g.edges() {
                pg.add_edge(nodes[e.u as usize], nodes[e.v as usize], ());
            }
            let theirs = petgraph::algo::matching::maximum_matching(&pg);
            assert_eq!(ours.len(), theirs.edges().count(), "trial {trial}");
        }
    }

    #[test]
    fn empty_graph_gives_empty_matching() {
        let g = Graph::new(5);
        let m = max_bipartite_cardinality_matching(&g, &[false, false, true, true, true]);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "not bipartite")]
    fn rejects_non_crossing_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        max_bipartite_cardinality_matching(&g, &[false, false, true]);
    }
}
