//! Hopcroft–Karp maximum-cardinality bipartite matching in O(E·√V).
//!
//! This is the offline (δ = 0) instantiation of the paper's
//! `Unw-Bip-Matching` black box: Algorithm 4 calls it on layered graphs.

use crate::edge::Vertex;
use crate::graph::Graph;
use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of the bipartite graph `g`.
///
/// `side[v]` gives the side of vertex `v`; every edge must cross sides.
/// Edge weights are ignored (the matching's reported weight uses the actual
/// edge weights, which is convenient when the caller wants `w(M)` of a
/// cardinality-optimal matching).
///
/// # Panics
///
/// Panics if `side.len() != g.vertex_count()` or some edge does not cross
/// the bipartition.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_bipartite_cardinality_matching};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 2, 1);
/// g.add_edge(0, 3, 1);
/// g.add_edge(1, 2, 1);
/// let side = vec![false, false, true, true];
/// let m = max_bipartite_cardinality_matching(&g, &side);
/// assert_eq!(m.len(), 2);
/// ```
pub fn max_bipartite_cardinality_matching(g: &Graph, side: &[bool]) -> Matching {
    max_bipartite_cardinality_matching_from(g, side, Matching::new(g.vertex_count()))
}

/// Like [`max_bipartite_cardinality_matching`], but warm-started from an
/// existing matching `init` (which must be a valid matching of `g`).
///
/// # Panics
///
/// See [`max_bipartite_cardinality_matching`]; additionally panics if
/// `init` is defined over a different vertex count.
pub fn max_bipartite_cardinality_matching_from(
    g: &Graph,
    side: &[bool],
    init: Matching,
) -> Matching {
    let n = g.vertex_count();
    assert_eq!(side.len(), n, "side labels must cover all vertices");
    assert_eq!(
        init.vertex_count(),
        n,
        "initial matching has wrong vertex count"
    );
    assert!(
        g.respects_bipartition(side).unwrap(),
        "graph is not bipartite under the given sides"
    );

    // flat left-only adjacency (counting sort, insertion order preserved):
    // adj_to/adj_eid[adj_off[l]..adj_off[l+1]] list l's (right, edge) pairs
    let edges = g.edges();
    let left_of = |e: &crate::edge::Edge| if !side[e.u as usize] { e.u } else { e.v };
    let (adj_off, adj_eid) = crate::csr::bucket_stable(n, edges.len(), |i| left_of(&edges[i]));
    let adj_to: Vec<Vertex> = adj_eid
        .iter()
        .map(|&i| {
            let e = &edges[i as usize];
            e.other(left_of(e))
        })
        .collect();

    // pair_v[v] = mate (NONE if free), pair_e[v] = matched edge index
    let mut pair_v = vec![INF; n];
    let mut pair_e = vec![INF; n];
    for me in init.iter() {
        let idx = g
            .incident(me.u)
            .find(|(_, ge)| ge.same_endpoints(&me))
            .map(|(i, _)| i)
            .expect("initial matching edge must exist in graph");
        pair_v[me.u as usize] = me.v;
        pair_v[me.v as usize] = me.u;
        pair_e[me.u as usize] = idx as u32;
        pair_e[me.v as usize] = idx as u32;
    }

    // only left vertices with incident edges can join an augmenting path
    // (layered graphs are vertex-huge but edge-sparse: sweeping the active
    // lefts instead of all of them is the difference between O(V) and
    // O(active) per phase)
    let lefts: Vec<Vertex> = (0..n as Vertex)
        .filter(|&v| !side[v as usize] && adj_off[v as usize] != adj_off[v as usize + 1])
        .collect();
    let mut dist: Vec<u32> = vec![INF; n];
    let mut queue: std::collections::VecDeque<Vertex> = std::collections::VecDeque::new();

    // BFS: layer the left vertices from the free ones.
    let bfs = |pair_v: &[u32],
               dist: &mut [u32],
               queue: &mut std::collections::VecDeque<Vertex>|
     -> bool {
        queue.clear();
        for &u in &lefts {
            if pair_v[u as usize] == INF {
                dist[u as usize] = 0;
                queue.push_back(u);
            } else {
                dist[u as usize] = INF;
            }
        }
        let mut reachable_free = false;
        while let Some(u) = queue.pop_front() {
            let r = adj_off[u as usize] as usize..adj_off[u as usize + 1] as usize;
            for &v in &adj_to[r] {
                let w = pair_v[v as usize];
                if w == INF {
                    reachable_free = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        reachable_free
    };

    struct Dfs<'x> {
        adj_off: &'x [u32],
        adj_to: &'x [Vertex],
        adj_eid: &'x [u32],
        pair_v: &'x mut [u32],
        pair_e: &'x mut [u32],
        dist: &'x mut [u32],
    }

    impl Dfs<'_> {
        fn run(&mut self, u: Vertex) -> bool {
            let r = self.adj_off[u as usize] as usize..self.adj_off[u as usize + 1] as usize;
            for i in r {
                let (v, eidx) = (self.adj_to[i], self.adj_eid[i]);
                let next = self.pair_v[v as usize];
                let ok = next == INF
                    || (self.dist[next as usize] == self.dist[u as usize] + 1 && self.run(next));
                if ok {
                    self.pair_v[u as usize] = v;
                    self.pair_v[v as usize] = u;
                    self.pair_e[u as usize] = eidx;
                    self.pair_e[v as usize] = eidx;
                    return true;
                }
            }
            self.dist[u as usize] = INF;
            false
        }
    }

    while bfs(&pair_v, &mut dist, &mut queue) {
        let mut dfs = Dfs {
            adj_off: &adj_off,
            adj_to: &adj_to,
            adj_eid: &adj_eid,
            pair_v: &mut pair_v,
            pair_e: &mut pair_e,
            dist: &mut dist,
        };
        for &u in &lefts {
            if dfs.pair_v[u as usize] == INF {
                dfs.run(u);
            }
        }
    }

    let mut m = Matching::new(n);
    for &u in &lefts {
        if pair_v[u as usize] != INF {
            m.insert(g.edge(pair_e[u as usize] as usize))
                .expect("pairs are disjoint");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn side_lr(nl: usize, n: usize) -> Vec<bool> {
        (0..n).map(|v| v >= nl).collect()
    }

    #[test]
    fn perfect_matching_on_complete_bipartite() {
        let mut g = Graph::new(6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                g.add_edge(u, v, 1);
            }
        }
        let m = max_bipartite_cardinality_matching(&g, &side_lr(3, 6));
        assert_eq!(m.len(), 3);
        m.validate(Some(&g)).unwrap();
    }

    #[test]
    fn hall_violator_limits_matching() {
        // three left vertices all adjacent only to one right vertex
        let mut g = Graph::new(4);
        for u in 0..3u32 {
            g.add_edge(u, 3, 1);
        }
        let m = max_bipartite_cardinality_matching(&g, &side_lr(3, 4));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn path_graph_alternation() {
        // path 0-2-1-3 as bipartite: left {0,1}, right {2,3}
        let mut g = Graph::new(4);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        let m = max_bipartite_cardinality_matching(&g, &side_lr(2, 4));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn warm_start_from_maximal_matching() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, side) =
            generators::random_bipartite(20, 20, 0.2, generators::WeightModel::Unit, &mut rng);
        let cold = max_bipartite_cardinality_matching(&g, &side);
        // greedy maximal as warm start
        let mut init = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = init.insert(*e);
        }
        let warm = max_bipartite_cardinality_matching_from(&g, &side, init);
        assert_eq!(cold.len(), warm.len());
        warm.validate(Some(&g)).unwrap();
    }

    #[test]
    fn agrees_with_petgraph_on_random_instances() {
        use petgraph::graph::UnGraph;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let nl = 3 + (trial % 7);
            let nr = 3 + (trial % 5);
            let (g, side) =
                generators::random_bipartite(nl, nr, 0.4, generators::WeightModel::Unit, &mut rng);
            let ours = max_bipartite_cardinality_matching(&g, &side);
            let mut pg = UnGraph::<(), ()>::new_undirected();
            let nodes: Vec<_> = (0..g.vertex_count()).map(|_| pg.add_node(())).collect();
            for e in g.edges() {
                pg.add_edge(nodes[e.u as usize], nodes[e.v as usize], ());
            }
            let theirs = petgraph::algo::matching::maximum_matching(&pg);
            assert_eq!(ours.len(), theirs.edges().count(), "trial {trial}");
        }
    }

    #[test]
    fn empty_graph_gives_empty_matching() {
        let g = Graph::new(5);
        let m = max_bipartite_cardinality_matching(&g, &[false, false, true, true, true]);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "not bipartite")]
    fn rejects_non_crossing_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        max_bipartite_cardinality_matching(&g, &[false, false, true]);
    }
}
