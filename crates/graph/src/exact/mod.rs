//! Exact matching solvers used as ground truth by tests and benchmarks.
//!
//! | solver | problem | graph class | complexity |
//! |---|---|---|---|
//! | [`hopcroft_karp`] | max cardinality | bipartite | O(E·√V) |
//! | [`blossom`] | max cardinality | general | O(V³) |
//! | [`hungarian`] | max weight | bipartite | O(V³) |
//! | [`mwm_general`] | max weight | general | O(V³) |
//! | [`brute_force`] | max weight | tiny general | exponential |
//!
//! Every solver is cross-validated against the others (and against
//! `petgraph` for cardinality) in the test suites.
//!
//! These dense oracles cap certifiable sizes at toys; for bipartite
//! instances at engine scale the `wmatch-oracle` crate provides the
//! slack-array Hungarian (warm-startable, with dual-feasibility
//! certificates) and the Gabow-style unit-weight route to cardinality
//! certificates. The facade's certify path prefers it on bipartite
//! inputs, and the agreement suites cross-validate it against every
//! solver below.

pub mod blossom;
pub mod brute_force;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod mwm_general;

pub use blossom::max_cardinality_matching;
pub use brute_force::{max_weight_matching_brute_force, MAX_BRUTE_FORCE_VERTICES};
pub use hopcroft_karp::max_bipartite_cardinality_matching;
pub use hungarian::max_weight_bipartite_matching;
pub use mwm_general::max_weight_matching;
