//! Exhaustive maximum-weight matching for tiny graphs.
//!
//! This is the "oracle for the oracles": every polynomial exact solver in
//! this crate is validated against it on small random instances.

use crate::edge::Edge;
use crate::graph::Graph;
use crate::matching::Matching;

/// Largest vertex count accepted by [`max_weight_matching_brute_force`].
pub const MAX_BRUTE_FORCE_VERTICES: usize = 22;

/// Computes an exact maximum-weight matching by dynamic programming over
/// vertex subsets, O(2ⁿ·deg).
///
/// # Panics
///
/// Panics if `g.vertex_count() > MAX_BRUTE_FORCE_VERTICES`.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, exact::max_weight_matching_brute_force};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 1);
/// g.add_edge(1, 2, 10);
/// g.add_edge(2, 3, 1);
/// let m = max_weight_matching_brute_force(&g);
/// assert_eq!(m.weight(), 10);
/// ```
pub fn max_weight_matching_brute_force(g: &Graph) -> Matching {
    let n = g.vertex_count();
    assert!(
        n <= MAX_BRUTE_FORCE_VERTICES,
        "brute force limited to {MAX_BRUTE_FORCE_VERTICES} vertices, got {n}"
    );
    if n == 0 {
        return Matching::new(0);
    }
    let full: usize = (1usize << n) - 1;
    // dp[mask] = best weight using only vertices in mask; choice[mask] = edge used for lowest bit
    let mut dp = vec![0i128; full + 1];
    let mut choice: Vec<Option<Edge>> = vec![None; full + 1];
    for mask in 1..=full {
        let v = mask.trailing_zeros() as usize;
        // option 1: leave v unmatched
        let without = dp[mask & !(1 << v)];
        let mut best = without;
        let mut best_edge = None;
        // option 2: match v along an incident edge inside mask
        for (_, e) in g.incident(v as u32) {
            let u = e.other(v as u32) as usize;
            if u != v && (mask >> u) & 1 == 1 {
                let rest = mask & !(1 << v) & !(1 << u);
                let cand = dp[rest] + e.weight as i128;
                if cand > best {
                    best = cand;
                    best_edge = Some(e);
                }
            }
        }
        dp[mask] = best;
        choice[mask] = best_edge;
    }
    // reconstruct
    let mut m = Matching::new(n);
    let mut mask = full;
    while mask != 0 {
        let v = mask.trailing_zeros() as usize;
        match choice[mask] {
            Some(e) => {
                m.insert(e).expect("dp edges are disjoint");
                mask &= !(1 << e.u as usize) & !(1 << e.v as usize);
            }
            None => {
                mask &= !(1 << v);
            }
        }
    }
    debug_assert_eq!(m.weight(), dp[full]);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_takes_outer_edges() {
        let g = generators::path_graph(&[5, 6, 5]);
        let m = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), 10);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn four_cycle_3434_optimum_is_8() {
        let (g, _) = generators::four_cycle_3434();
        assert_eq!(max_weight_matching_brute_force(&g).weight(), 8);
    }

    #[test]
    fn fig1_optimum_is_8() {
        let (g, _) = generators::fig1_graph();
        assert_eq!(max_weight_matching_brute_force(&g).weight(), 8);
    }

    #[test]
    fn triangle_picks_heaviest_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 3);
        g.add_edge(2, 0, 5);
        let m = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), 5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(max_weight_matching_brute_force(&g).is_empty());
        let g = Graph::new(4);
        assert!(max_weight_matching_brute_force(&g).is_empty());
    }

    #[test]
    fn result_is_always_a_valid_matching() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let g = generators::gnp(9, 0.4, WeightModel::Uniform { lo: 1, hi: 20 }, &mut rng);
            let m = max_weight_matching_brute_force(&g);
            m.validate(Some(&g)).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_large_graphs() {
        let g = Graph::new(30);
        max_weight_matching_brute_force(&g);
    }

    #[test]
    fn zero_weight_edges_do_not_hurt() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 0);
        g.add_edge(2, 3, 4);
        let m = max_weight_matching_brute_force(&g);
        assert_eq!(m.weight(), 4);
    }
}
