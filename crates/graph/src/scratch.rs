//! Epoch-stamped scratch arenas: reusable dense vertex-indexed sets, maps
//! and counters with O(1) reset.
//!
//! Every inner loop of the paper's machinery needs transient per-vertex
//! state — the `visited` set of an alternating-walk DFS (Algorithm 3
//! line 3), the conflict marks of the cross-class sweep (Algorithm 3
//! lines 5–8), the parent links of an augmenting-path search. Allocating a
//! `HashSet`/`HashMap` per call makes the allocator the dominant cost term;
//! the classical fix (Gabow's timestamped mark arrays) is a dense `u32`
//! stamp per vertex plus a current-epoch counter: membership is
//! `stamp[v] == epoch`, and clearing the whole structure is one epoch
//! increment.
//!
//! [`Scratch`] bundles the two sets the workspace's hot paths use
//! (`visited` for walk searches, `mark` for conflict sweeps) plus a
//! high-water mark that feeds the facade's memory telemetry. The
//! individual [`EpochSet`] / [`EpochMap`] types are also usable on their
//! own — [`EpochMap`] is the dense replacement for `HashMap<Vertex, _>`
//! (parent links, degree counters: see the stream/MPC coreset builds).

use crate::edge::Vertex;

/// A dense set of vertices with O(1) insert, query, remove and clear.
///
/// # Example
///
/// ```
/// use wmatch_graph::scratch::EpochSet;
///
/// let mut s = EpochSet::new();
/// s.ensure(8);
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// s.clear(); // O(1): bumps the epoch
/// assert!(!s.contains(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochSet {
    epoch: u32,
    stamp: Vec<u32>,
}

impl EpochSet {
    /// Creates an empty set; call [`EpochSet::ensure`] before use.
    pub fn new() -> Self {
        EpochSet {
            epoch: 1,
            stamp: Vec::new(),
        }
    }

    /// Grows the backing array to cover vertices `0..n` (never shrinks).
    pub fn ensure(&mut self, n: usize) {
        if self.epoch == 0 {
            self.epoch = 1;
        }
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Empties the set in O(1) by advancing the epoch (stamp `0` is
    /// reserved as never-current, so a wrapped epoch re-zeroes the array).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `v`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        let s = &mut self.stamp[v as usize];
        let fresh = *s != self.epoch;
        *s = self.epoch;
        fresh
    }

    /// Removes `v` (a no-op if absent).
    #[inline]
    pub fn remove(&mut self, v: Vertex) {
        self.stamp[v as usize] = 0;
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Capacity in vertices.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

/// A dense vertex-indexed map with O(1) insert, query and clear — the
/// epoch-stamped replacement for `HashMap<Vertex, T>` in hot loops.
///
/// # Example
///
/// ```
/// use wmatch_graph::scratch::EpochMap;
///
/// let mut m: EpochMap<u32> = EpochMap::new();
/// m.ensure(4);
/// m.insert(2, 7);
/// assert_eq!(m.get(2), Some(7));
/// m.clear();
/// assert_eq!(m.get(2), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochMap<T: Copy + Default> {
    epoch: u32,
    stamp: Vec<u32>,
    slot: Vec<T>,
}

impl<T: Copy + Default> EpochMap<T> {
    /// Creates an empty map; call [`EpochMap::ensure`] before use.
    pub fn new() -> Self {
        EpochMap {
            epoch: 1,
            stamp: Vec::new(),
            slot: Vec::new(),
        }
    }

    /// Grows the backing arrays to cover vertices `0..n` (never shrinks).
    pub fn ensure(&mut self, n: usize) {
        if self.epoch == 0 {
            self.epoch = 1;
        }
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.slot.resize(n, T::default());
        }
    }

    /// Empties the map in O(1) by advancing the epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Binds `v` to `value`, overwriting any current binding.
    #[inline]
    pub fn insert(&mut self, v: Vertex, value: T) {
        self.stamp[v as usize] = self.epoch;
        self.slot[v as usize] = value;
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: Vertex) -> Option<T> {
        (self.stamp[v as usize] == self.epoch).then(|| self.slot[v as usize])
    }

    /// Whether `v` is bound.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// The value bound to `v`, or `T::default()` — convenient for
    /// counters (`EpochMap<u32>` as a degree counter).
    #[inline]
    pub fn get_or_default(&self, v: Vertex) -> T {
        self.get(v).unwrap_or_default()
    }

    /// Capacity in vertices.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

/// The scratch arena one worker owns across calls: the `visited` set of
/// the current walk search and the `mark` set of the current conflict
/// sweep, reset per call in O(1), plus the high-water mark the facade
/// reports as real memory telemetry.
///
/// One `Scratch` per thread: the per-class workers of Algorithm 3 line 3
/// each own one, so the parallel sweep performs no per-class allocation.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Visited set of the current walk/search.
    pub visited: EpochSet,
    /// Conflict marks (e.g. vertices touched by accepted augmentations).
    pub mark: EpochSet,
    /// Dense per-vertex counter (e.g. the coreset degree caps of the MPC
    /// `Unw-Bip-Matching` box, one counter per worker in the parallel
    /// machine rounds).
    pub count: EpochMap<u32>,
    high_water: usize,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Prepares the arena for a computation over `n` vertices: grows the
    /// backing arrays if needed, empties all structures (O(1)), and
    /// records the high-water mark.
    pub fn begin(&mut self, n: usize) {
        self.visited.ensure(n);
        self.mark.ensure(n);
        self.count.ensure(n);
        self.visited.clear();
        self.mark.clear();
        self.count.clear();
        self.high_water = self.high_water.max(n);
    }

    /// The largest vertex count this arena has been prepared for — the
    /// real dense-array footprint behind the facade's memory telemetry.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Folds another arena's high-water mark into this one (used when
    /// aggregating per-worker arenas after a parallel sweep).
    pub fn absorb_high_water(&mut self, other: usize) {
        self.high_water = self.high_water.max(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_query_remove() {
        let mut s = EpochSet::new();
        s.ensure(4);
        assert!(s.insert(0));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        s.remove(3);
        assert!(!s.contains(3));
        assert!(s.insert(3));
    }

    #[test]
    fn clear_is_complete() {
        let mut s = EpochSet::new();
        s.ensure(16);
        for v in 0..16 {
            s.insert(v);
        }
        s.clear();
        for v in 0..16 {
            assert!(!s.contains(v), "vertex {v} leaked across the epoch reset");
        }
    }

    #[test]
    fn epoch_wrap_rezeros() {
        let mut s = EpochSet::new();
        s.ensure(2);
        s.epoch = u32::MAX - 1;
        s.insert(0);
        s.clear(); // epoch = MAX
        assert!(!s.contains(0));
        s.insert(1);
        assert!(s.contains(1));
        s.clear(); // wrap: fill(0), epoch = 1
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(0) && !s.contains(1));
        assert!(s.insert(0));
    }

    #[test]
    fn map_wrap_rezeros() {
        let mut m: EpochMap<u32> = EpochMap::new();
        m.ensure(2);
        m.epoch = u32::MAX;
        m.insert(0, 9);
        m.clear();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.get(0), None);
        assert_eq!(m.get_or_default(0), 0);
    }

    #[test]
    fn map_bindings_respect_epochs() {
        let mut m: EpochMap<u64> = EpochMap::new();
        m.ensure(3);
        m.insert(1, 10);
        m.insert(1, 11);
        assert_eq!(m.get(1), Some(11));
        m.clear();
        assert!(!m.contains(1));
        m.insert(2, 5);
        assert_eq!(m.get(2), Some(5));
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn scratch_tracks_high_water() {
        let mut s = Scratch::new();
        s.begin(10);
        s.visited.insert(9);
        s.begin(4);
        assert!(!s.visited.contains(3));
        assert_eq!(s.high_water(), 10);
        s.absorb_high_water(32);
        assert_eq!(s.high_water(), 32);
    }

    #[test]
    fn ensure_grows_without_losing_current_epoch() {
        let mut s = EpochSet::new();
        s.ensure(2);
        s.insert(1);
        s.ensure(8);
        assert!(s.contains(1));
        assert!(!s.contains(7));
        assert!(s.insert(7));
    }
}
