//! Error types for graph and matching operations.

use std::error::Error;
use std::fmt;

use crate::edge::Vertex;

/// Errors produced by graph and matching operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex index was out of range for the graph or matching.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The number of vertices in the structure.
        n: usize,
    },
    /// Tried to insert a matching edge at an endpoint that is already
    /// matched.
    EndpointMatched {
        /// The endpoint that is already matched.
        vertex: Vertex,
    },
    /// An operation required an edge that is present in the matching, but it
    /// was not.
    EdgeNotMatched {
        /// One endpoint of the missing edge.
        u: Vertex,
        /// The other endpoint of the missing edge.
        v: Vertex,
    },
    /// An augmentation was internally inconsistent (e.g. added edges that
    /// conflict with each other).
    InvalidAugmentation {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            GraphError::EndpointMatched { vertex } => {
                write!(f, "endpoint {vertex} is already matched")
            }
            GraphError::EdgeNotMatched { u, v } => {
                write!(f, "edge {{{u},{v}}} is not in the matching")
            }
            GraphError::InvalidAugmentation { reason } => {
                write!(f, "invalid augmentation: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 4 };
        assert_eq!(e.to_string(), "vertex 9 out of range for 4 vertices");
        let e = GraphError::EndpointMatched { vertex: 3 };
        assert_eq!(e.to_string(), "endpoint 3 is already matched");
        let e = GraphError::EdgeNotMatched { u: 1, v: 2 };
        assert_eq!(e.to_string(), "edge {1,2} is not in the matching");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
