//! Alternating paths/cycles, matching neighbourhoods and augmentations
//! (Definitions 4.2–4.5 of the paper).
//!
//! An *alternating* path or cycle alternates between matched and unmatched
//! edges. Applying such a component `C` to a matching `M` removes the
//! *matching neighbourhood* `C_M` — all edges of `M` incident to vertices of
//! `C`, including those on `C` itself — and adds `C \ M`. The *gain*
//! `w⁺(C)` is the resulting change in matching weight.

use std::collections::HashSet;

use crate::edge::{Edge, Vertex};
use crate::error::GraphError;
use crate::matching::Matching;

/// The shape of an alternating component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// An open alternating path.
    Path,
    /// A closed alternating cycle (even length).
    Cycle,
}

/// An augmentation: a set of edges to add and the matched edges their
/// application removes (the matching neighbourhood `C_M`).
///
/// Built from an alternating component with
/// [`Augmentation::from_component`], or assembled directly with
/// [`Augmentation::from_parts`] (used by algorithms that already know the
/// add/remove sets, e.g. single-edge augmentations).
///
/// # Example
///
/// ```
/// use wmatch_graph::{Edge, Matching, Augmentation};
///
/// // path 0-1-2-3 with {1,2} matched; augmenting flips to {0,1},{2,3}
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 3)]).unwrap();
/// let comp = [Edge::new(0, 1, 2), Edge::new(1, 2, 3), Edge::new(2, 3, 2)];
/// let aug = Augmentation::from_component(&m, &comp).unwrap();
/// assert_eq!(aug.gain(), 2 + 2 - 3);
///
/// let mut m = m;
/// aug.apply(&mut m).unwrap();
/// assert_eq!(m.weight(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Augmentation {
    added: Vec<Edge>,
    removed: Vec<Edge>,
}

impl Augmentation {
    /// Builds an augmentation from an alternating component `comp` (a path
    /// or cycle given as a connected edge sequence) with respect to `m`.
    ///
    /// The removed set is the full matching neighbourhood: every edge of `m`
    /// incident to a vertex of `comp`.
    ///
    /// # Errors
    ///
    /// Returns an error if `comp` is not a connected alternating path/cycle
    /// with respect to `m`, or if the edges to add are not vertex-disjoint.
    pub fn from_component(m: &Matching, comp: &[Edge]) -> Result<Self, GraphError> {
        if comp.is_empty() {
            return Err(GraphError::InvalidAugmentation {
                reason: "empty component".into(),
            });
        }
        check_alternating(m, comp)?;
        let mut added = Vec::new();
        let mut vertices = HashSet::new();
        for e in comp {
            vertices.insert(e.u);
            vertices.insert(e.v);
            if !m.contains(e) {
                added.push(*e);
            }
        }
        let mut removed = Vec::new();
        let mut removed_keys = HashSet::new();
        for &v in &vertices {
            if let Some(me) = m.matched_edge(v) {
                if removed_keys.insert(me.key()) {
                    removed.push(me);
                }
            }
        }
        Self::from_parts(added, removed)
    }

    /// Assembles an augmentation directly from edges to add and matched
    /// edges to remove.
    ///
    /// # Errors
    ///
    /// Returns an error if the added edges are not pairwise vertex-disjoint,
    /// or an added edge's endpoint is covered by a matched edge that is not
    /// scheduled for removal (checked at [`Augmentation::apply`] time too).
    pub fn from_parts(added: Vec<Edge>, removed: Vec<Edge>) -> Result<Self, GraphError> {
        let mut seen = HashSet::new();
        for e in &added {
            if !seen.insert(e.u) || !seen.insert(e.v) {
                return Err(GraphError::InvalidAugmentation {
                    reason: format!("added edges conflict at an endpoint of {e}"),
                });
            }
        }
        Ok(Augmentation { added, removed })
    }

    /// Edges this augmentation adds to the matching.
    pub fn added(&self) -> &[Edge] {
        &self.added
    }

    /// Matched edges this augmentation removes (the matching neighbourhood).
    pub fn removed(&self) -> &[Edge] {
        &self.removed
    }

    /// The gain `w⁺(C)`: total added weight minus total removed weight.
    pub fn gain(&self) -> i128 {
        let add: i128 = self.added.iter().map(|e| e.weight as i128).sum();
        let rem: i128 = self.removed.iter().map(|e| e.weight as i128).sum();
        add - rem
    }

    /// Number of edges in the component representation (added + removed).
    pub fn size(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// All vertices touched by this augmentation (endpoints of added and
    /// removed edges), deduplicated.
    pub fn touched_vertices(&self) -> Vec<Vertex> {
        let mut vs = HashSet::new();
        for e in self.added.iter().chain(self.removed.iter()) {
            vs.insert(e.u);
            vs.insert(e.v);
        }
        let mut out: Vec<_> = vs.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Whether this augmentation touches a vertex present in `marks` —
    /// the epoch-scratch form of the vertex-disjointness test the greedy
    /// selection sweeps use (equivalent to intersecting
    /// [`Augmentation::touched_vertices`] with the set, without
    /// materializing it).
    pub fn conflicts_with_marks(&self, marks: &crate::scratch::EpochSet) -> bool {
        self.added
            .iter()
            .chain(self.removed.iter())
            .any(|e| marks.contains(e.u) || marks.contains(e.v))
    }

    /// Inserts every vertex this augmentation touches into `marks`
    /// (claiming them for the disjointness test of later candidates).
    pub fn mark_touched(&self, marks: &mut crate::scratch::EpochSet) {
        for e in self.added.iter().chain(self.removed.iter()) {
            marks.insert(e.u);
            marks.insert(e.v);
        }
    }

    /// Whether two augmentations touch a common vertex (conservative
    /// conflict test: conflicting augmentations must not both be applied).
    pub fn conflicts_with(&self, other: &Augmentation) -> bool {
        let mine: HashSet<Vertex> = self.touched_vertices().into_iter().collect();
        other
            .added
            .iter()
            .chain(other.removed.iter())
            .any(|e| mine.contains(&e.u) || mine.contains(&e.v))
    }

    /// Applies the augmentation to `m` and returns the realized gain.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving `m` unchanged) if a removed edge is not in
    /// `m`, or an added edge's endpoint remains matched after removals.
    pub fn apply(&self, m: &mut Matching) -> Result<i128, GraphError> {
        // Pre-validate so that m is untouched on failure.
        for e in &self.removed {
            if !m.contains(e) {
                return Err(GraphError::EdgeNotMatched { u: e.u, v: e.v });
            }
        }
        let removed_keys: HashSet<(Vertex, Vertex)> =
            self.removed.iter().map(|e| e.key()).collect();
        for e in &self.added {
            for x in [e.u, e.v] {
                if let Some(me) = m.matched_edge(x) {
                    if !removed_keys.contains(&me.key()) {
                        return Err(GraphError::EndpointMatched { vertex: x });
                    }
                }
            }
        }
        let before = m.weight();
        for e in &self.removed {
            m.remove_pair(e.u, e.v)?;
        }
        for e in &self.added {
            m.insert(*e)?;
        }
        Ok(m.weight() - before)
    }
}

/// Verifies that `comp` is a connected edge sequence forming a path or cycle
/// whose edges alternate between `m` and its complement, and reports which.
///
/// The sequence may start and end with matched or unmatched edges (the
/// paper's Definition 4.2 allows both).
///
/// # Errors
///
/// Returns [`GraphError::InvalidAugmentation`] describing the violation.
pub fn check_alternating(m: &Matching, comp: &[Edge]) -> Result<ComponentKind, GraphError> {
    if comp.is_empty() {
        return Err(GraphError::InvalidAugmentation {
            reason: "empty component".into(),
        });
    }
    if comp.len() == 1 {
        return Ok(ComponentKind::Path);
    }
    // Determine the walk orientation: consecutive edges must share exactly
    // the walk vertex.
    let first = comp[0];
    let second = comp[1];
    let mut cur = if second.touches(first.v) {
        first.v
    } else if second.touches(first.u) {
        first.u
    } else {
        return Err(GraphError::InvalidAugmentation {
            reason: format!("edges {first} and {second} are disconnected"),
        });
    };
    let start = first.other(cur);
    let mut seen_vertices: HashSet<Vertex> = HashSet::new();
    seen_vertices.insert(start);
    for (i, w) in comp.windows(2).enumerate() {
        let (a, b) = (w[0], w[1]);
        if m.contains(&a) == m.contains(&b) {
            return Err(GraphError::InvalidAugmentation {
                reason: format!("edges {a} and {b} do not alternate (position {i})"),
            });
        }
        if !b.touches(cur) {
            return Err(GraphError::InvalidAugmentation {
                reason: format!("edge {b} does not continue the walk at {cur}"),
            });
        }
        if !seen_vertices.insert(cur) {
            return Err(GraphError::InvalidAugmentation {
                reason: format!("vertex {cur} repeated: component is not simple"),
            });
        }
        cur = b.other(cur);
    }
    if cur == start {
        Ok(ComponentKind::Cycle)
    } else if seen_vertices.contains(&cur) {
        Err(GraphError::InvalidAugmentation {
            reason: format!("vertex {cur} repeated: component is not simple"),
        })
    } else {
        Ok(ComponentKind::Path)
    }
}

/// Decomposes the symmetric difference of two matchings into its connected
/// components, each an alternating path or cycle, returned as ordered edge
/// sequences.
///
/// Edges present in both matchings (same endpoint pair) cancel out. Each
/// vertex has degree at most 2 in the difference, so components are paths
/// and cycles; path components are reported starting from a degree-1 vertex.
pub fn symmetric_difference_components(m1: &Matching, m2: &Matching) -> Vec<Vec<Edge>> {
    let n = m1.vertex_count().max(m2.vertex_count());
    // a vertex carries at most one difference edge per matching and
    // consecutive walk edges must come from opposite matchings, so the
    // components follow from O(1) mate lookups alone — no adjacency
    // structure is materialized
    let edge_in = |m: &Matching, e: &Edge| {
        (e.u as usize) < m.vertex_count() && (e.v as usize) < m.vertex_count() && m.contains(e)
    };
    let d1 = |v: Vertex| {
        if (v as usize) >= m1.vertex_count() {
            return None;
        }
        m1.matched_edge(v).filter(|e| !edge_in(m2, e))
    };
    let d2 = |v: Vertex| {
        if (v as usize) >= m2.vertex_count() {
            return None;
        }
        m2.matched_edge(v).filter(|e| !edge_in(m1, e))
    };
    let degree = |v: Vertex| usize::from(d1(v).is_some()) + usize::from(d2(v).is_some());
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    // From `start`, take its m1-side difference edge if any (the legacy
    // adjacency listed m1 edges first), then alternate matchings until the
    // walk ends (path) or returns to a visited vertex (cycle).
    let mut walk_from = |start: Vertex, visited: &mut [bool]| {
        let mut comp = Vec::new();
        let mut from_m1 = d1(start).is_some();
        let mut cur = start;
        visited[start as usize] = true;
        loop {
            let next = if from_m1 { d1(cur) } else { d2(cur) };
            let Some(e) = next else { break };
            comp.push(e);
            cur = e.other(cur);
            if visited[cur as usize] {
                break;
            }
            visited[cur as usize] = true;
            from_m1 = !from_m1;
        }
        if !comp.is_empty() {
            components.push(comp);
        }
    };
    // Paths first: start from degree-1 vertices.
    for v in 0..n as Vertex {
        if !visited[v as usize] && degree(v) == 1 {
            walk_from(v, &mut visited);
        }
    }
    // Remaining difference edges form cycles.
    for v in 0..n as Vertex {
        if !visited[v as usize] && degree(v) > 0 {
            walk_from(v, &mut visited);
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_matching() -> (Matching, Vec<Edge>) {
        // path 0-1-2-3-4-5, matched {1,2} and {3,4}
        let m = Matching::from_edges(6, [Edge::new(1, 2, 3), Edge::new(3, 4, 3)]).unwrap();
        let comp = vec![
            Edge::new(0, 1, 2),
            Edge::new(1, 2, 3),
            Edge::new(2, 3, 5),
            Edge::new(3, 4, 3),
            Edge::new(4, 5, 2),
        ];
        (m, comp)
    }

    #[test]
    fn from_component_path_gain() {
        let (m, comp) = path_matching();
        let aug = Augmentation::from_component(&m, &comp).unwrap();
        // added: 2+5+2=9, removed: 3+3=6
        assert_eq!(aug.gain(), 3);
        assert_eq!(aug.added().len(), 3);
        assert_eq!(aug.removed().len(), 2);
    }

    #[test]
    fn apply_realizes_gain() {
        let (mut m, comp) = path_matching();
        let aug = Augmentation::from_component(&m, &comp).unwrap();
        let gain = aug.apply(&mut m).unwrap();
        assert_eq!(gain, 3);
        assert_eq!(m.weight(), 9);
        assert_eq!(m.len(), 3);
        m.validate(None).unwrap();
    }

    #[test]
    fn matching_neighbourhood_includes_off_path_edges() {
        // path 1-2 unmatched, but 0-1 and 2-3 matched off-path
        let m = Matching::from_edges(4, [Edge::new(0, 1, 2), Edge::new(2, 3, 2)]).unwrap();
        let comp = vec![Edge::new(1, 2, 10)];
        let aug = Augmentation::from_component(&m, &comp).unwrap();
        assert_eq!(aug.removed().len(), 2);
        assert_eq!(aug.gain(), 10 - 4);
    }

    #[test]
    fn cycle_component() {
        // 4-cycle with weights 3,4,3,4 (the paper's Section 1.1.2 example)
        let m = Matching::from_edges(4, [Edge::new(0, 1, 3), Edge::new(2, 3, 3)]).unwrap();
        let comp = vec![
            Edge::new(0, 1, 3),
            Edge::new(1, 2, 4),
            Edge::new(2, 3, 3),
            Edge::new(3, 0, 4),
        ];
        assert_eq!(check_alternating(&m, &comp).unwrap(), ComponentKind::Cycle);
        let aug = Augmentation::from_component(&m, &comp).unwrap();
        assert_eq!(aug.gain(), 2);
        let mut m2 = m.clone();
        aug.apply(&mut m2).unwrap();
        assert_eq!(m2.weight(), 8);
    }

    #[test]
    fn non_alternating_rejected() {
        let m = Matching::from_edges(4, [Edge::new(1, 2, 1)]).unwrap();
        // two consecutive unmatched edges
        let comp = vec![Edge::new(0, 1, 1), Edge::new(1, 3, 1)];
        assert!(check_alternating(&m, &comp).is_err());
    }

    #[test]
    fn disconnected_rejected() {
        let m = Matching::new(5);
        let comp = vec![Edge::new(0, 1, 1), Edge::new(3, 4, 1)];
        assert!(check_alternating(&m, &comp).is_err());
    }

    #[test]
    fn non_simple_rejected() {
        let m = Matching::from_edges(4, [Edge::new(0, 1, 1), Edge::new(2, 3, 1)]).unwrap();
        // walk 2-0-1-... then 1-2 would revisit 2 as an interior vertex, then 2-3
        let comp = vec![
            Edge::new(2, 0, 1),
            Edge::new(0, 1, 1),
            Edge::new(1, 2, 1),
            Edge::new(2, 3, 1),
        ];
        assert!(check_alternating(&m, &comp).is_err());
    }

    #[test]
    fn apply_is_atomic_on_error() {
        let m0 = Matching::from_edges(4, [Edge::new(0, 1, 5)]).unwrap();
        let mut m = m0.clone();
        // removal of a non-matched edge must fail and leave m unchanged
        let aug =
            Augmentation::from_parts(vec![Edge::new(2, 3, 9)], vec![Edge::new(1, 2, 1)]).unwrap();
        assert!(aug.apply(&mut m).is_err());
        assert_eq!(m, m0);
        // added edge whose endpoint stays matched must fail
        let aug2 = Augmentation::from_parts(vec![Edge::new(1, 2, 9)], vec![]).unwrap();
        assert!(aug2.apply(&mut m).is_err());
        assert_eq!(m, m0);
    }

    #[test]
    fn from_parts_rejects_conflicting_additions() {
        assert!(
            Augmentation::from_parts(vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)], vec![]).is_err()
        );
    }

    #[test]
    fn conflict_detection_via_touched_vertices() {
        let a =
            Augmentation::from_parts(vec![Edge::new(0, 1, 1)], vec![Edge::new(1, 2, 1)]).unwrap();
        let b = Augmentation::from_parts(vec![Edge::new(2, 3, 1)], vec![]).unwrap();
        let c = Augmentation::from_parts(vec![Edge::new(4, 5, 1)], vec![]).unwrap();
        assert!(a.conflicts_with(&b)); // share vertex 2 via removed edge
        assert!(!a.conflicts_with(&c));
        assert_eq!(a.touched_vertices(), vec![0, 1, 2]);
    }

    #[test]
    fn symmetric_difference_paths_and_cycles() {
        // M1 = {0-1, 2-3}; M2 = {1-2, 3-0}: difference is an alternating 4-cycle
        let m1 = Matching::from_edges(4, [Edge::new(0, 1, 1), Edge::new(2, 3, 1)]).unwrap();
        let m2 = Matching::from_edges(4, [Edge::new(1, 2, 1), Edge::new(3, 0, 1)]).unwrap();
        let comps = symmetric_difference_components(&m1, &m2);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(
            check_alternating(&m1, &comps[0]).unwrap(),
            ComponentKind::Cycle
        );
    }

    #[test]
    fn symmetric_difference_cancels_common_edges() {
        let m1 = Matching::from_edges(4, [Edge::new(0, 1, 1), Edge::new(2, 3, 1)]).unwrap();
        let m2 = Matching::from_edges(4, [Edge::new(0, 1, 1)]).unwrap();
        let comps = symmetric_difference_components(&m1, &m2);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![Edge::new(2, 3, 1)]);
    }

    #[test]
    fn symmetric_difference_augmenting_path_ordering() {
        // M1 = {1-2}; M2 = {0-1, 2-3}: difference is the path 0-1-2-3
        let m1 = Matching::from_edges(4, [Edge::new(1, 2, 1)]).unwrap();
        let m2 = Matching::from_edges(4, [Edge::new(0, 1, 1), Edge::new(2, 3, 1)]).unwrap();
        let comps = symmetric_difference_components(&m1, &m2);
        assert_eq!(comps.len(), 1);
        let comp = &comps[0];
        assert_eq!(comp.len(), 3);
        assert_eq!(check_alternating(&m1, comp).unwrap(), ComponentKind::Path);
    }

    #[test]
    fn single_edge_augmentation_kind() {
        let m = Matching::new(2);
        assert_eq!(
            check_alternating(&m, &[Edge::new(0, 1, 1)]).unwrap(),
            ComponentKind::Path
        );
    }
}
