//! Exhaustive search for short augmentations.
//!
//! Fact 1.3 of the paper: *if there is no augmenting path or cycle of
//! length at most 2ℓ−1, then `M` is a (1−1/ℓ)-approximate matching.* This
//! module provides the exhaustive searcher used to verify that fact and to
//! measure optimality gaps on small instances. It enumerates every simple
//! alternating path and cycle with at most `max_len` edges and reports the
//! one with the largest (positive) gain.
//!
//! Exponential in `max_len`; intended for small graphs in tests and
//! reports.
//!
//! The searcher runs on the flat hot path: neighbourhood scans read the
//! graph's cached [`CsrView`](crate::CsrView) slices, the visited set is
//! the [`Scratch`] arena's epoch-stamped set, reset in O(1) per
//! start vertex, and candidate gains are tracked incrementally along the
//! walk — the DFS inner loop performs no heap allocation (an
//! [`Augmentation`] is materialized only for the winning component). Reuse
//! one [`AugSearcher`] across calls to amortize even the walk buffers.

use crate::alternating::Augmentation;
use crate::edge::{Edge, Vertex};
use crate::graph::Graph;
use crate::matching::Matching;
use crate::scratch::Scratch;

/// Finds the best augmentation (alternating path or cycle, at most
/// `max_len` edges on the component) with strictly positive gain, or `None`
/// if no such augmentation exists.
///
/// Convenience wrapper constructing a fresh [`AugSearcher`]; reuse a
/// searcher when calling in a loop.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, Matching, Edge, aug_search::best_augmentation};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 3);
/// g.add_edge(2, 3, 2);
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 3)]).unwrap();
/// let best = best_augmentation(&g, &m, 3).expect("path 0-1-2-3 gains 1");
/// assert_eq!(best.gain(), 1);
/// ```
pub fn best_augmentation(g: &Graph, m: &Matching, max_len: usize) -> Option<Augmentation> {
    AugSearcher::new().best_augmentation(g, m, max_len)
}

/// Reusable exhaustive searcher for short augmentations.
///
/// Holds the epoch-stamped visited marks and walk buffers across calls;
/// after the first call on a graph of a given size, subsequent searches
/// allocate only when they find an improving component.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, Matching, aug_search::AugSearcher};
///
/// let mut g = Graph::new(2);
/// g.add_edge(0, 1, 5);
/// let mut searcher = AugSearcher::new();
/// let aug = searcher.best_augmentation(&g, &Matching::new(2), 1).unwrap();
/// assert_eq!(aug.gain(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AugSearcher {
    scratch: Scratch,
    walk: Vec<Edge>,
    best_walk: Vec<Edge>,
    best_gain: i128,
}

impl AugSearcher {
    /// Creates a searcher with empty buffers.
    pub fn new() -> Self {
        AugSearcher::default()
    }

    /// The largest dense scratch footprint this searcher has used —
    /// telemetry for callers that report memory high-water marks.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch.high_water()
    }

    /// Finds the best augmentation with strictly positive gain, or `None`.
    ///
    /// Equivalent to the free function [`best_augmentation`], with the
    /// scratch state reused across calls.
    pub fn best_augmentation(
        &mut self,
        g: &Graph,
        m: &Matching,
        max_len: usize,
    ) -> Option<Augmentation> {
        self.search(g, m, max_len);
        if self.best_gain > 0 {
            let aug = Augmentation::from_component(m, &self.best_walk)
                .expect("gated walks form valid alternating components");
            debug_assert_eq!(aug.gain(), self.best_gain);
            Some(aug)
        } else {
            None
        }
    }

    /// Like [`AugSearcher::best_augmentation`], but decomposes the winning
    /// component into caller-owned `added`/`removed` buffers instead of
    /// materializing an [`Augmentation`] — the fully allocation-free
    /// variant the dynamic repair path runs on. Returns the (strictly
    /// positive) gain, or `None`; the buffers are cleared either way.
    ///
    /// The buffers hold exactly the sets
    /// [`Augmentation::added`]/[`Augmentation::removed`] would: walk edges
    /// outside the matching, and the matching neighbourhood of the
    /// component (each matched edge once).
    pub fn best_augmentation_into(
        &mut self,
        g: &Graph,
        m: &Matching,
        max_len: usize,
        added: &mut Vec<Edge>,
        removed: &mut Vec<Edge>,
    ) -> Option<i128> {
        added.clear();
        removed.clear();
        self.search(g, m, max_len);
        if self.best_gain <= 0 {
            return None;
        }
        // hash-free decomposition: `mark` dedups component vertices; a
        // matched edge joins `removed` when its first endpoint is scanned
        self.scratch.mark.clear();
        for e in &self.best_walk {
            if !m.contains(e) {
                added.push(*e);
            }
            for x in [e.u, e.v] {
                if self.scratch.mark.insert(x) {
                    if let Some(me) = m.matched_edge(x) {
                        if !self.scratch.mark.contains(me.other(x)) {
                            removed.push(me);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(
            added.iter().map(|e| e.weight as i128).sum::<i128>()
                - removed.iter().map(|e| e.weight as i128).sum::<i128>(),
            self.best_gain,
            "decomposed parts must reproduce the walk's gain"
        );
        Some(self.best_gain)
    }

    /// Runs the exhaustive DFS, leaving the winner (if any) in
    /// `best_walk`/`best_gain`.
    fn search(&mut self, g: &Graph, m: &Matching, max_len: usize) {
        let n = g.vertex_count();
        self.scratch.begin(n);
        self.walk.clear();
        self.walk.reserve(max_len + 1);
        self.best_walk.clear();
        self.best_walk.reserve(max_len + 1);
        self.best_gain = 0;

        // DFS over simple alternating walks from every start vertex.
        for start in 0..n as Vertex {
            self.scratch.visited.clear();
            self.scratch.visited.insert(start);
            self.walk.clear();
            // the start vertex's matched edge is in the neighbourhood of
            // every non-empty prefix
            let removed = m.incident_weight(start) as i128;
            self.dfs(g, g.csr(), m, start, start, None, max_len, 0, removed);
        }
    }

    /// Extends the walk edge by edge, carrying the component gain
    /// (`added − removed`, with the matching neighbourhood deduplicated
    /// via the visited marks) in the recursion frame so every prefix is
    /// evaluated without materializing an [`Augmentation`].
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        g: &Graph,
        csr: &crate::csr::CsrView,
        m: &Matching,
        start: Vertex,
        cur: Vertex,
        last_in_m: Option<bool>,
        max_len: usize,
        added: i128,
        removed: i128,
    ) {
        if self.walk.len() >= max_len {
            return;
        }
        for &eid in csr.edge_ids(cur) {
            let e = g.edge(eid as usize);
            let in_m = m.contains(&e);
            if let Some(last) = last_in_m {
                if in_m == last {
                    continue; // must alternate
                }
            }
            let next = e.other(cur);
            if next == start && self.walk.len() >= 2 {
                // closing a cycle: alternation must hold around the joint too
                let first_in_m = m.contains(&self.walk[0]);
                if in_m != first_in_m && (self.walk.len() + 1).is_multiple_of(2) {
                    // both endpoints are already on the walk: the closing
                    // edge changes only the added weight
                    let gain = added + if in_m { 0 } else { e.weight as i128 } - removed;
                    if gain > self.best_gain {
                        self.best_gain = gain;
                        self.best_walk.clear();
                        self.best_walk.extend_from_slice(&self.walk);
                        self.best_walk.push(e);
                    }
                }
                continue;
            }
            if self.scratch.visited.contains(next) {
                continue;
            }
            let added = added + if in_m { 0 } else { e.weight as i128 };
            // `next` contributes its matched edge to the neighbourhood
            // unless the edge's other endpoint already did
            let removed = removed
                + match m.matched_edge(next) {
                    Some(me) if !self.scratch.visited.contains(me.other(next)) => me.weight as i128,
                    _ => 0,
                };
            self.walk.push(e);
            self.scratch.visited.insert(next);
            // every prefix is itself a valid alternating path component
            let gain = added - removed;
            if gain > self.best_gain {
                self.best_gain = gain;
                self.best_walk.clear();
                self.best_walk.extend_from_slice(&self.walk);
            }
            self.dfs(g, csr, m, start, next, Some(in_m), max_len, added, removed);
            self.scratch.visited.remove(next);
            self.walk.pop();
        }
    }
}

/// Whether any augmentation of length at most `max_len` with positive gain
/// exists.
pub fn exists_augmentation(g: &Graph, m: &Matching, max_len: usize) -> bool {
    best_augmentation(g, m, max_len).is_some()
}

/// An approximation certificate derived from Fact 1.3 of the paper:
/// searches for the largest `ℓ ≤ max_l` such that `m` admits no augmenting
/// path or cycle with at most `2ℓ−1` edges, and returns the implied
/// guarantee `w(M) ≥ (1−1/ℓ)·w(M*)` as the factor `1−1/ℓ`.
///
/// Returns `None` when even a single-edge augmentation exists (no
/// certificate better than the trivial 0 can be issued). Exponential in
/// `max_l`; intended for small instances.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, Matching, Edge, aug_search::approximation_certificate};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 3);
/// g.add_edge(2, 3, 2);
/// // the middle edge alone admits a 3-edge augmenting path: no certificate
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 3)]).unwrap();
/// assert_eq!(approximation_certificate(&g, &m, 4), None);
///
/// // the optimal matching certifies (1 - 1/4) at max_l = 4
/// let opt = Matching::from_edges(4, [Edge::new(0, 1, 2), Edge::new(2, 3, 2)]).unwrap();
/// assert_eq!(approximation_certificate(&g, &opt, 4), Some(0.75));
/// ```
pub fn approximation_certificate(g: &Graph, m: &Matching, max_l: usize) -> Option<f64> {
    let mut best = None;
    for l in 2..=max_l {
        if exists_augmentation(g, m, 2 * l - 1) {
            break;
        }
        best = Some(1.0 - 1.0 / l as f64);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_weight_matching;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_single_edge_augmentation() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5);
        let m = Matching::new(2);
        let aug = best_augmentation(&g, &m, 1).unwrap();
        assert_eq!(aug.gain(), 5);
    }

    #[test]
    fn finds_length_three_path() {
        let g = generators::path_graph(&[2, 3, 2]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        let aug = best_augmentation(&g, &m, 3).unwrap();
        assert_eq!(aug.gain(), 1);
        // restricted to length 1, replacing the middle edge never profits
        assert!(best_augmentation(&g, &m, 1).is_none());
    }

    #[test]
    fn finds_augmenting_cycle() {
        let (g, m) = generators::four_cycle_3434();
        // the augmenting 4-cycle gains 2; with matching-neighbourhood
        // semantics (Definition 4.4) the same augmentation is also
        // expressible as the 3-edge alternating path that drops one matched
        // edge into the neighbourhood of both endpoints
        let aug = best_augmentation(&g, &m, 4).unwrap();
        assert_eq!(aug.gain(), 2);
        let aug3 = best_augmentation(&g, &m, 3).unwrap();
        assert_eq!(aug3.gain(), 2);
        // with at most 2 edges nothing improves the perfect matching
        assert!(best_augmentation(&g, &m, 2).is_none());
    }

    #[test]
    fn respects_single_edge_swap_gains() {
        // heavy edge replaces two incident matched edges
        let (g, m0, _) = generators::fig2_graph();
        // {e,h} of weight 2 vs w(M0(e)) + w(M0(h)) = 1 + 0
        let aug = best_augmentation(&g, &m0, 5).unwrap();
        assert!(aug.gain() > 0);
    }

    #[test]
    fn none_when_matching_is_optimal() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..25 {
            let g = generators::gnp(8, 0.5, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let opt = max_weight_matching(&g);
            assert!(
                best_augmentation(&g, &opt, 8).is_none(),
                "an optimal matching admits no augmentation"
            );
        }
    }

    #[test]
    fn fact_1_3_on_random_graphs() {
        // If no augmenting path/cycle of length <= 2l-1 exists, then
        // w(M) >= (1 - 1/l) w(M*).
        let mut rng = StdRng::seed_from_u64(37);
        for trial in 0..40 {
            let g = generators::gnp(8, 0.45, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let opt_w = max_weight_matching(&g).weight();
            if opt_w == 0 {
                continue;
            }
            // build some suboptimal matching greedily by arrival order
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            for l in 2..=4usize {
                if !exists_augmentation(&g, &m, 2 * l - 1) {
                    // w(M) * l >= (l-1) * w(M*)
                    assert!(
                        m.weight() * l as i128 >= (l as i128 - 1) * opt_w,
                        "trial {trial}, l={l}: w(M)={} < (1-1/{l})*{opt_w}",
                        m.weight()
                    );
                }
            }
        }
    }

    #[test]
    fn certificate_is_sound() {
        // whenever a certificate is issued, the true ratio respects it
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..30 {
            let g = generators::gnp(8, 0.4, WeightModel::Uniform { lo: 1, hi: 12 }, &mut rng);
            let opt = max_weight_matching(&g).weight();
            if opt == 0 {
                continue;
            }
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            if let Some(cert) = approximation_certificate(&g, &m, 4) {
                assert!(
                    m.weight() as f64 >= cert * opt as f64 - 1e-9,
                    "certificate {cert} violated: {} vs {opt}",
                    m.weight()
                );
            }
        }
    }

    #[test]
    fn certificate_on_optimal_matching_grows_with_max_l() {
        let g = generators::path_graph(&[5, 6, 5]);
        let opt = max_weight_matching(&g);
        assert_eq!(approximation_certificate(&g, &opt, 2), Some(0.5));
        assert_eq!(approximation_certificate(&g, &opt, 5), Some(0.8));
    }

    #[test]
    fn into_variant_agrees_with_materialized_augmentation() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut searcher = AugSearcher::new();
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for _ in 0..30 {
            let g = generators::gnp(9, 0.4, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            for max_len in [1usize, 3, 5] {
                let gain =
                    searcher.best_augmentation_into(&g, &m, max_len, &mut added, &mut removed);
                match searcher.best_augmentation(&g, &m, max_len) {
                    Some(aug) => {
                        assert_eq!(gain, Some(aug.gain()));
                        let mut a = added.clone();
                        let mut r = removed.clone();
                        let mut ea = aug.added().to_vec();
                        let mut er = aug.removed().to_vec();
                        for v in [&mut a, &mut r, &mut ea, &mut er] {
                            v.sort_unstable_by_key(|e| (e.key(), e.weight));
                        }
                        assert_eq!(a, ea, "added sets agree");
                        assert_eq!(r, er, "removed sets agree");
                    }
                    None => assert_eq!(gain, None),
                }
            }
        }
    }

    #[test]
    fn exhaustive_matches_optimal_when_unbounded() {
        // applying best augmentations repeatedly with large length bound
        // must reach the optimum on small graphs
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..15 {
            let g = generators::gnp(7, 0.5, WeightModel::Uniform { lo: 1, hi: 7 }, &mut rng);
            let opt_w = max_weight_matching(&g).weight();
            let mut m = Matching::new(g.vertex_count());
            while let Some(aug) = best_augmentation(&g, &m, 7) {
                aug.apply(&mut m).unwrap();
            }
            assert_eq!(m.weight(), opt_w);
        }
    }
}
