//! Exhaustive search for short augmentations.
//!
//! Fact 1.3 of the paper: *if there is no augmenting path or cycle of
//! length at most 2ℓ−1, then `M` is a (1−1/ℓ)-approximate matching.* This
//! module provides the exhaustive searcher used to verify that fact and to
//! measure optimality gaps on small instances. It enumerates every simple
//! alternating path and cycle with at most `max_len` edges and reports the
//! one with the largest (positive) gain.
//!
//! Exponential in `max_len`; intended for small graphs in tests and
//! reports.

use std::collections::HashSet;

use crate::alternating::Augmentation;
use crate::edge::{Edge, Vertex};
use crate::graph::Graph;
use crate::matching::Matching;

/// Finds the best augmentation (alternating path or cycle, at most
/// `max_len` edges on the component) with strictly positive gain, or `None`
/// if no such augmentation exists.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, Matching, Edge, aug_search::best_augmentation};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 3);
/// g.add_edge(2, 3, 2);
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 3)]).unwrap();
/// let best = best_augmentation(&g, &m, 3).expect("path 0-1-2-3 gains 1");
/// assert_eq!(best.gain(), 1);
/// ```
pub fn best_augmentation(g: &Graph, m: &Matching, max_len: usize) -> Option<Augmentation> {
    let mut best: Option<Augmentation> = None;
    let mut consider = |aug: Augmentation| {
        if aug.gain() > 0 && best.as_ref().is_none_or(|b| aug.gain() > b.gain()) {
            best = Some(aug);
        }
    };

    // DFS over simple alternating walks from every start vertex.
    let n = g.vertex_count();
    for start in 0..n as Vertex {
        let mut visited: HashSet<Vertex> = HashSet::new();
        visited.insert(start);
        let mut walk: Vec<Edge> = Vec::new();
        dfs(
            g,
            m,
            start,
            start,
            None,
            &mut visited,
            &mut walk,
            max_len,
            &mut consider,
        );
    }
    best
}

/// Whether any augmentation of length at most `max_len` with positive gain
/// exists.
pub fn exists_augmentation(g: &Graph, m: &Matching, max_len: usize) -> bool {
    best_augmentation(g, m, max_len).is_some()
}

/// An approximation certificate derived from Fact 1.3 of the paper:
/// searches for the largest `ℓ ≤ max_l` such that `m` admits no augmenting
/// path or cycle with at most `2ℓ−1` edges, and returns the implied
/// guarantee `w(M) ≥ (1−1/ℓ)·w(M*)` as the factor `1−1/ℓ`.
///
/// Returns `None` when even a single-edge augmentation exists (no
/// certificate better than the trivial 0 can be issued). Exponential in
/// `max_l`; intended for small instances.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Graph, Matching, Edge, aug_search::approximation_certificate};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 3);
/// g.add_edge(2, 3, 2);
/// // the middle edge alone admits a 3-edge augmenting path: no certificate
/// let m = Matching::from_edges(4, [Edge::new(1, 2, 3)]).unwrap();
/// assert_eq!(approximation_certificate(&g, &m, 4), None);
///
/// // the optimal matching certifies (1 - 1/4) at max_l = 4
/// let opt = Matching::from_edges(4, [Edge::new(0, 1, 2), Edge::new(2, 3, 2)]).unwrap();
/// assert_eq!(approximation_certificate(&g, &opt, 4), Some(0.75));
/// ```
pub fn approximation_certificate(g: &Graph, m: &Matching, max_l: usize) -> Option<f64> {
    let mut best = None;
    for l in 2..=max_l {
        if exists_augmentation(g, m, 2 * l - 1) {
            break;
        }
        best = Some(1.0 - 1.0 / l as f64);
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    m: &Matching,
    start: Vertex,
    cur: Vertex,
    last_in_m: Option<bool>,
    visited: &mut HashSet<Vertex>,
    walk: &mut Vec<Edge>,
    max_len: usize,
    consider: &mut impl FnMut(Augmentation),
) {
    if walk.len() >= max_len {
        return;
    }
    for (_, e) in g.incident(cur) {
        let in_m = m.contains(&e);
        if let Some(last) = last_in_m {
            if in_m == last {
                continue; // must alternate
            }
        }
        let next = e.other(cur);
        if next == start && walk.len() >= 2 {
            // closing a cycle: alternation must hold around the joint too
            let first_in_m = m.contains(&walk[0]);
            if in_m != first_in_m && (walk.len() + 1).is_multiple_of(2) {
                walk.push(e);
                if let Ok(aug) = Augmentation::from_component(m, walk) {
                    consider(aug);
                }
                walk.pop();
            }
            continue;
        }
        if visited.contains(&next) {
            continue;
        }
        walk.push(e);
        visited.insert(next);
        // every prefix is itself a valid alternating path component
        if let Ok(aug) = Augmentation::from_component(m, walk) {
            consider(aug);
        }
        dfs(
            g,
            m,
            start,
            next,
            Some(in_m),
            visited,
            walk,
            max_len,
            consider,
        );
        visited.remove(&next);
        walk.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_weight_matching;
    use crate::generators::{self, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_single_edge_augmentation() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5);
        let m = Matching::new(2);
        let aug = best_augmentation(&g, &m, 1).unwrap();
        assert_eq!(aug.gain(), 5);
    }

    #[test]
    fn finds_length_three_path() {
        let g = generators::path_graph(&[2, 3, 2]);
        let m = Matching::from_edges(4, [g.edge(1)]).unwrap();
        let aug = best_augmentation(&g, &m, 3).unwrap();
        assert_eq!(aug.gain(), 1);
        // restricted to length 1, replacing the middle edge never profits
        assert!(best_augmentation(&g, &m, 1).is_none());
    }

    #[test]
    fn finds_augmenting_cycle() {
        let (g, m) = generators::four_cycle_3434();
        // the augmenting 4-cycle gains 2; with matching-neighbourhood
        // semantics (Definition 4.4) the same augmentation is also
        // expressible as the 3-edge alternating path that drops one matched
        // edge into the neighbourhood of both endpoints
        let aug = best_augmentation(&g, &m, 4).unwrap();
        assert_eq!(aug.gain(), 2);
        let aug3 = best_augmentation(&g, &m, 3).unwrap();
        assert_eq!(aug3.gain(), 2);
        // with at most 2 edges nothing improves the perfect matching
        assert!(best_augmentation(&g, &m, 2).is_none());
    }

    #[test]
    fn respects_single_edge_swap_gains() {
        // heavy edge replaces two incident matched edges
        let (g, m0, _) = generators::fig2_graph();
        // {e,h} of weight 2 vs w(M0(e)) + w(M0(h)) = 1 + 0
        let aug = best_augmentation(&g, &m0, 5).unwrap();
        assert!(aug.gain() > 0);
    }

    #[test]
    fn none_when_matching_is_optimal() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..25 {
            let g = generators::gnp(8, 0.5, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let opt = max_weight_matching(&g);
            assert!(
                best_augmentation(&g, &opt, 8).is_none(),
                "an optimal matching admits no augmentation"
            );
        }
    }

    #[test]
    fn fact_1_3_on_random_graphs() {
        // If no augmenting path/cycle of length <= 2l-1 exists, then
        // w(M) >= (1 - 1/l) w(M*).
        let mut rng = StdRng::seed_from_u64(37);
        for trial in 0..40 {
            let g = generators::gnp(8, 0.45, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
            let opt_w = max_weight_matching(&g).weight();
            if opt_w == 0 {
                continue;
            }
            // build some suboptimal matching greedily by arrival order
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            for l in 2..=4usize {
                if !exists_augmentation(&g, &m, 2 * l - 1) {
                    // w(M) * l >= (l-1) * w(M*)
                    assert!(
                        m.weight() * l as i128 >= (l as i128 - 1) * opt_w,
                        "trial {trial}, l={l}: w(M)={} < (1-1/{l})*{opt_w}",
                        m.weight()
                    );
                }
            }
        }
    }

    #[test]
    fn certificate_is_sound() {
        // whenever a certificate is issued, the true ratio respects it
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..30 {
            let g = generators::gnp(8, 0.4, WeightModel::Uniform { lo: 1, hi: 12 }, &mut rng);
            let opt = max_weight_matching(&g).weight();
            if opt == 0 {
                continue;
            }
            let mut m = Matching::new(g.vertex_count());
            for e in g.edges() {
                let _ = m.insert(*e);
            }
            if let Some(cert) = approximation_certificate(&g, &m, 4) {
                assert!(
                    m.weight() as f64 >= cert * opt as f64 - 1e-9,
                    "certificate {cert} violated: {} vs {opt}",
                    m.weight()
                );
            }
        }
    }

    #[test]
    fn certificate_on_optimal_matching_grows_with_max_l() {
        let g = generators::path_graph(&[5, 6, 5]);
        let opt = max_weight_matching(&g);
        assert_eq!(approximation_certificate(&g, &opt, 2), Some(0.5));
        assert_eq!(approximation_certificate(&g, &opt, 5), Some(0.8));
    }

    #[test]
    fn exhaustive_matches_optimal_when_unbounded() {
        // applying best augmentations repeatedly with large length bound
        // must reach the optimum on small graphs
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..15 {
            let g = generators::gnp(7, 0.5, WeightModel::Uniform { lo: 1, hi: 7 }, &mut rng);
            let opt_w = max_weight_matching(&g).weight();
            let mut m = Matching::new(g.vertex_count());
            while let Some(aug) = best_augmentation(&g, &m, 7) {
                aug.apply(&mut m).unwrap();
            }
            assert_eq!(m.weight(), opt_w);
        }
    }
}
