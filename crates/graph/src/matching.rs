//! Matchings with O(1) mate queries and weight tracking.

use std::fmt;

use crate::edge::{Edge, Vertex};
use crate::error::GraphError;
use crate::graph::Graph;

/// A matching: a set of vertex-disjoint edges.
///
/// Each vertex stores its matched edge (if any), so mate and incident-weight
/// queries — `w(M(v))` in the paper's notation, with the paper's convention
/// that `w(M(v)) = 0` for unmatched `v` — are O(1). The total weight is
/// maintained incrementally.
///
/// # Example
///
/// ```
/// use wmatch_graph::{Edge, Matching};
///
/// let mut m = Matching::new(4);
/// m.insert(Edge::new(0, 1, 5)).unwrap();
/// m.insert(Edge::new(2, 3, 7)).unwrap();
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.weight(), 12);
/// assert_eq!(m.mate(0), Some(1));
/// assert_eq!(m.incident_weight(2), 7);
/// assert!(m.insert(Edge::new(1, 2, 9)).is_err()); // 1 and 2 are matched
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    mate_edge: Vec<Option<Edge>>,
    len: usize,
    weight: i128,
}

impl Matching {
    /// Creates an empty matching over `n` vertices.
    pub fn new(n: usize) -> Self {
        Matching {
            mate_edge: vec![None; n],
            len: 0,
            weight: 0,
        }
    }

    /// Builds a matching from vertex-disjoint edges.
    ///
    /// # Errors
    ///
    /// Returns an error if the edges are not vertex-disjoint or out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Result<Self, GraphError> {
        let mut m = Matching::new(n);
        for e in edges {
            m.insert(e)?;
        }
        Ok(m)
    }

    /// Number of vertices this matching is defined over.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.mate_edge.len()
    }

    /// Number of matched edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matching is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total weight `w(M)`.
    #[inline]
    pub fn weight(&self) -> i128 {
        self.weight
    }

    /// The matched edge incident to `v`, if any.
    #[inline]
    pub fn matched_edge(&self, v: Vertex) -> Option<Edge> {
        self.mate_edge[v as usize]
    }

    /// The mate of `v`, if `v` is matched.
    #[inline]
    pub fn mate(&self, v: Vertex) -> Option<Vertex> {
        self.mate_edge[v as usize].map(|e| e.other(v))
    }

    /// Whether `v` is matched.
    #[inline]
    pub fn is_matched(&self, v: Vertex) -> bool {
        self.mate_edge[v as usize].is_some()
    }

    /// `w(M(v))` with the paper's convention: the weight of the matched edge
    /// incident to `v`, or 0 if `v` is unmatched (Section 3.2: unmatched
    /// vertices are thought of as matched to an artificial vertex by a
    /// zero-weight edge).
    #[inline]
    pub fn incident_weight(&self, v: Vertex) -> u64 {
        self.mate_edge[v as usize].map_or(0, |e| e.weight)
    }

    /// Whether the specific endpoint pair `{u,v}` is a matched edge.
    pub fn contains_pair(&self, u: Vertex, v: Vertex) -> bool {
        self.mate(u) == Some(v)
    }

    /// Whether `e`'s endpoint pair is matched (weight is ignored).
    pub fn contains(&self, e: &Edge) -> bool {
        self.contains_pair(e.u, e.v)
    }

    /// Inserts an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EndpointMatched`] if either endpoint is already
    /// matched, or [`GraphError::VertexOutOfRange`] for bad endpoints.
    pub fn insert(&mut self, e: Edge) -> Result<(), GraphError> {
        let n = self.mate_edge.len();
        for x in [e.u, e.v] {
            if (x as usize) >= n {
                return Err(GraphError::VertexOutOfRange { vertex: x, n });
            }
        }
        for x in [e.u, e.v] {
            if self.mate_edge[x as usize].is_some() {
                return Err(GraphError::EndpointMatched { vertex: x });
            }
        }
        self.mate_edge[e.u as usize] = Some(e);
        self.mate_edge[e.v as usize] = Some(e);
        self.len += 1;
        self.weight += e.weight as i128;
        Ok(())
    }

    /// Removes the matched edge incident to `v` and returns it (or `None` if
    /// `v` was unmatched).
    pub fn remove_incident(&mut self, v: Vertex) -> Option<Edge> {
        let e = self.mate_edge[v as usize].take()?;
        self.mate_edge[e.other(v) as usize] = None;
        self.len -= 1;
        self.weight -= e.weight as i128;
        Some(e)
    }

    /// Removes the matched edge `{u,v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeNotMatched`] if `{u,v}` is not matched.
    pub fn remove_pair(&mut self, u: Vertex, v: Vertex) -> Result<Edge, GraphError> {
        if self.contains_pair(u, v) {
            Ok(self.remove_incident(u).expect("pair was matched"))
        } else {
            Err(GraphError::EdgeNotMatched { u, v })
        }
    }

    /// Empties the matching and re-sizes it to `n` vertices, keeping the
    /// backing allocation — the reuse primitive behind the dynamic
    /// engine's per-repair sub-matchings.
    pub fn reset(&mut self, n: usize) {
        self.mate_edge.clear();
        self.mate_edge.resize(n, None);
        self.len = 0;
        self.weight = 0;
    }

    /// Overwrites this matching with a copy of `other`, reusing the
    /// backing allocation (unlike `clone`, no fresh buffer is built —
    /// the dynamic engine refreshes its pre-epoch snapshot this way at
    /// steady state).
    pub fn copy_from(&mut self, other: &Matching) {
        self.mate_edge.clear();
        self.mate_edge.extend_from_slice(&other.mate_edge);
        self.len = other.len;
        self.weight = other.weight;
    }

    /// Iterator over matched edges (each edge reported once).
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.mate_edge.iter().enumerate().filter_map(|(v, me)| {
            me.and_then(|e| {
                // report the edge only at its smaller endpoint
                if e.key().0 == v as Vertex {
                    Some(e)
                } else {
                    None
                }
            })
        })
    }

    /// Collects the matched edges into a vector.
    pub fn to_edges(&self) -> Vec<Edge> {
        self.iter().collect()
    }

    /// Vertices left unmatched.
    pub fn free_vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.mate_edge
            .iter()
            .enumerate()
            .filter(|(_, me)| me.is_none())
            .map(|(v, _)| v as Vertex)
    }

    /// Checks internal consistency (mate symmetry, length, weight) and that
    /// every matched edge exists in `g` with the same weight, if a graph is
    /// provided.
    pub fn validate(&self, g: Option<&Graph>) -> Result<(), GraphError> {
        let mut len = 0usize;
        let mut weight = 0i128;
        for (v, me) in self.mate_edge.iter().enumerate() {
            if let Some(e) = me {
                if !e.touches(v as Vertex) {
                    return Err(GraphError::InvalidAugmentation {
                        reason: format!("edge {e} stored at non-endpoint {v}"),
                    });
                }
                let w = e.other(v as Vertex);
                if self.mate_edge[w as usize] != Some(*e) {
                    return Err(GraphError::InvalidAugmentation {
                        reason: format!("asymmetric mate for {e}"),
                    });
                }
                if e.key().0 == v as Vertex {
                    len += 1;
                    weight += e.weight as i128;
                }
            }
        }
        if len != self.len || weight != self.weight {
            return Err(GraphError::InvalidAugmentation {
                reason: format!(
                    "cached len/weight ({}, {}) disagree with actual ({len}, {weight})",
                    self.len, self.weight
                ),
            });
        }
        if let Some(g) = g {
            for e in self.iter() {
                let ok = g
                    .incident(e.u)
                    .any(|(_, ge)| ge.same_endpoints(&e) && ge.weight == e.weight);
                if !ok {
                    return Err(GraphError::InvalidAugmentation {
                        reason: format!("matched edge {e} not present in graph"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matching(|M|={}, w={})", self.len, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = Matching::new(4);
        m.insert(Edge::new(0, 1, 5)).unwrap();
        m.insert(Edge::new(2, 3, 7)).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.weight(), 12);
        let e = m.remove_incident(3).unwrap();
        assert_eq!(e, Edge::new(2, 3, 7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.weight(), 5);
        assert!(!m.is_matched(2));
        m.validate(None).unwrap();
    }

    #[test]
    fn insert_conflict_rejected() {
        let mut m = Matching::new(3);
        m.insert(Edge::new(0, 1, 1)).unwrap();
        assert_eq!(
            m.insert(Edge::new(1, 2, 1)),
            Err(GraphError::EndpointMatched { vertex: 1 })
        );
        // failed insert must not corrupt state
        assert_eq!(m.len(), 1);
        m.validate(None).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Matching::new(2);
        assert!(matches!(
            m.insert(Edge::new(0, 9, 1)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn mate_and_incident_weight() {
        let mut m = Matching::new(4);
        m.insert(Edge::new(1, 3, 9)).unwrap();
        assert_eq!(m.mate(1), Some(3));
        assert_eq!(m.mate(3), Some(1));
        assert_eq!(m.mate(0), None);
        assert_eq!(m.incident_weight(1), 9);
        assert_eq!(m.incident_weight(0), 0); // paper's w(M(v))=0 convention
    }

    #[test]
    fn iter_reports_each_edge_once() {
        let mut m = Matching::new(6);
        m.insert(Edge::new(5, 4, 1)).unwrap();
        m.insert(Edge::new(0, 2, 2)).unwrap();
        let edges = m.to_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|e| e.key() == (4, 5)));
        assert!(edges.iter().any(|e| e.key() == (0, 2)));
    }

    #[test]
    fn free_vertices_listed() {
        let mut m = Matching::new(4);
        m.insert(Edge::new(1, 2, 1)).unwrap();
        let free: Vec<_> = m.free_vertices().collect();
        assert_eq!(free, vec![0, 3]);
    }

    #[test]
    fn remove_pair_errors_when_absent() {
        let mut m = Matching::new(4);
        m.insert(Edge::new(0, 1, 1)).unwrap();
        assert_eq!(
            m.remove_pair(0, 2),
            Err(GraphError::EdgeNotMatched { u: 0, v: 2 })
        );
        assert!(m.remove_pair(1, 0).is_ok());
    }

    #[test]
    fn validate_against_graph() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5);
        let m = Matching::from_edges(3, [Edge::new(0, 1, 5)]).unwrap();
        m.validate(Some(&g)).unwrap();
        // wrong weight -> invalid
        let m2 = Matching::from_edges(3, [Edge::new(0, 1, 6)]).unwrap();
        assert!(m2.validate(Some(&g)).is_err());
        // absent edge -> invalid
        let m3 = Matching::from_edges(3, [Edge::new(1, 2, 5)]).unwrap();
        assert!(m3.validate(Some(&g)).is_err());
    }

    #[test]
    fn reset_and_copy_from_reuse_state() {
        let mut m = Matching::new(4);
        m.insert(Edge::new(0, 1, 5)).unwrap();
        m.reset(2);
        assert_eq!(m.vertex_count(), 2);
        assert!(m.is_empty());
        assert_eq!(m.weight(), 0);
        m.insert(Edge::new(0, 1, 3)).unwrap();
        m.validate(None).unwrap();

        let mut src = Matching::new(3);
        src.insert(Edge::new(1, 2, 9)).unwrap();
        m.copy_from(&src);
        assert_eq!(m, src);
        m.validate(None).unwrap();
    }

    #[test]
    fn from_edges_rejects_overlap() {
        assert!(Matching::from_edges(3, [Edge::new(0, 1, 1), Edge::new(1, 2, 1)]).is_err());
    }
}
