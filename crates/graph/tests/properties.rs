//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_graph::alternating::symmetric_difference_components;
use wmatch_graph::exact::{
    max_bipartite_cardinality_matching, max_cardinality_matching, max_weight_bipartite_matching,
    max_weight_matching, max_weight_matching_brute_force,
};
use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::{Edge, Graph, Matching};

/// Strategy: a random graph as (n, edge list with weights in [1, 30]).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u64..=30), 0..=max_m).prop_map(
            move |raw| {
                let mut g = Graph::new(n);
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in raw {
                    if u != v && seen.insert(if u < v { (u, v) } else { (v, u) }) {
                        g.add_edge(u, v, w);
                    }
                }
                g
            },
        )
    })
}

fn arb_bipartite(max_side: usize) -> impl Strategy<Value = (Graph, Vec<bool>)> {
    (1usize..=max_side, 1usize..=max_side).prop_flat_map(move |(nl, nr)| {
        proptest::collection::vec((0..nl as u32, 0..nr as u32, 1u64..=30), 0..=3 * max_side)
            .prop_map(move |raw| {
                let n = nl + nr;
                let mut g = Graph::new(n);
                let mut seen = std::collections::HashSet::new();
                for (u, v, w) in raw {
                    let v = v + nl as u32;
                    if seen.insert((u, v)) {
                        g.add_edge(u, v, w);
                    }
                }
                let side = (0..n).map(|v| v >= nl).collect();
                (g, side)
            })
    })
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(200).with_seed(0x0067_7261_7068))] // b"graph"

    /// The general weighted solver always matches brute force.
    #[test]
    fn mwm_general_equals_brute_force(g in arb_graph(10, 24)) {
        let fast = max_weight_matching(&g);
        let brute = max_weight_matching_brute_force(&g);
        prop_assert_eq!(fast.weight(), brute.weight());
        fast.validate(Some(&g)).unwrap();
    }

    /// The blossom cardinality solver matches brute force on unit weights.
    #[test]
    fn blossom_equals_brute_force(g in arb_graph(11, 28)) {
        let unit = g.unweighted_copy();
        let card = max_cardinality_matching(&unit);
        let brute = max_weight_matching_brute_force(&unit);
        prop_assert_eq!(card.len() as i128, brute.weight());
    }

    /// Hungarian equals the general solver on bipartite instances.
    #[test]
    fn hungarian_equals_general((g, side) in arb_bipartite(7)) {
        let hung = max_weight_bipartite_matching(&g, &side);
        let gen = max_weight_matching(&g);
        prop_assert_eq!(hung.weight(), gen.weight());
        hung.validate(Some(&g)).unwrap();
    }

    /// Hopcroft–Karp equals blossom on bipartite instances.
    #[test]
    fn hk_equals_blossom((g, side) in arb_bipartite(8)) {
        let hk = max_bipartite_cardinality_matching(&g, &side);
        let bl = max_cardinality_matching(&g);
        prop_assert_eq!(hk.len(), bl.len());
    }

    /// A matching built from any edge subset greedily is always valid and
    /// its tracked weight equals the recomputed weight.
    #[test]
    fn matching_weight_tracking(g in arb_graph(12, 40)) {
        let mut m = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = m.insert(*e);
        }
        m.validate(Some(&g)).unwrap();
        let recomputed: i128 = m.iter().map(|e| e.weight as i128).sum();
        prop_assert_eq!(m.weight(), recomputed);
        // maximality: every edge has a matched endpoint
        for e in g.edges() {
            prop_assert!(m.is_matched(e.u) || m.is_matched(e.v));
        }
    }

    /// Greedy maximal matching is a 1/2-approximation of maximum
    /// cardinality (classic bound the paper builds on).
    #[test]
    fn greedy_is_half_approx(g in arb_graph(12, 40)) {
        let mut m = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = m.insert(*e);
        }
        let opt = max_cardinality_matching(&g);
        prop_assert!(2 * m.len() >= opt.len());
    }

    /// Symmetric-difference components are alternating w.r.t. both
    /// matchings, and their total gain accounts exactly for the weight gap.
    #[test]
    fn symmetric_difference_is_exhaustive(g in arb_graph(10, 24)) {
        let mut greedy = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = greedy.insert(*e);
        }
        let opt = max_weight_matching(&g);
        let comps = symmetric_difference_components(&greedy, &opt);
        let mut diff_weight = 0i128;
        for comp in &comps {
            wmatch_graph::alternating::check_alternating(&greedy, comp).unwrap();
            for e in comp {
                if opt.contains(e) {
                    diff_weight += e.weight as i128;
                } else {
                    diff_weight -= e.weight as i128;
                }
            }
        }
        prop_assert_eq!(diff_weight, opt.weight() - greedy.weight());
    }

    /// Applying the best augmentation never produces an invalid matching
    /// and increases weight by exactly the reported gain.
    #[test]
    fn augmentation_apply_is_sound(g in arb_graph(9, 18), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // random initial matching
        let mut m = Matching::new(g.vertex_count());
        use rand::seq::SliceRandom;
        let mut edges = g.edges().to_vec();
        edges.shuffle(&mut rng);
        for e in edges.iter().take(edges.len() / 2) {
            let _ = m.insert(*e);
        }
        if let Some(aug) = wmatch_graph::aug_search::best_augmentation(&g, &m, 5) {
            let before = m.weight();
            let gain = aug.apply(&mut m).unwrap();
            prop_assert_eq!(gain, aug.gain());
            prop_assert_eq!(m.weight(), before + gain);
            m.validate(Some(&g)).unwrap();
        }
    }

    /// Fact 1.3 (weighted form used in the paper): no augmenting
    /// path/cycle with <= 2l-1 edges implies a (1-1/l)-approximation.
    #[test]
    fn fact_1_3(g in arb_graph(9, 16), l in 2usize..4) {
        let mut m = Matching::new(g.vertex_count());
        for e in g.edges() {
            let _ = m.insert(*e);
        }
        let opt = max_weight_matching(&g).weight();
        if !wmatch_graph::aug_search::exists_augmentation(&g, &m, 2 * l - 1) {
            prop_assert!(m.weight() * l as i128 >= (l as i128 - 1) * opt);
        }
    }
}

#[test]
fn generators_are_deterministic_per_seed() {
    let g1 = generators::gnp(
        30,
        0.2,
        WeightModel::Uniform { lo: 1, hi: 99 },
        &mut StdRng::seed_from_u64(42),
    );
    let g2 = generators::gnp(
        30,
        0.2,
        WeightModel::Uniform { lo: 1, hi: 99 },
        &mut StdRng::seed_from_u64(42),
    );
    assert_eq!(g1, g2);
}

#[test]
fn edge_ordering_is_stable_for_streams() {
    // streaming experiments rely on edges() preserving insertion order
    let mut g = Graph::new(4);
    g.add_edge(3, 2, 5);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 9);
    let ws: Vec<u64> = g.edges().iter().map(|e| e.weight).collect();
    assert_eq!(ws, vec![5, 1, 9]);
    let _ = Edge::new(0, 1, 2);
}
