//! Work-stealing scheduler invariants for [`WorkerPool`].
//!
//! The pool claims size-adaptive chunks from per-worker owner ranges and
//! steals from foreign ranges on drain. None of that scheduling freedom may
//! leak into results: `run_map` output is keyed by item index and must be
//! bit-identical for every thread count, every chunk interleaving, and
//! every steal order. These tests pin that contract, plus the liveness
//! property that a panicking item inside a multi-item chunk still drains
//! the job (no lost `done` increments, no parked dispatcher).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use wmatch_graph::pool::WorkerPool;

/// A cheap deterministic per-item value with a data-dependent cost skew, so
/// chunks take wildly different times and stealing actually engages when
/// the OS schedules more than one worker.
fn loaded(i: usize, salt: u64) -> u64 {
    let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
    let spins = (h % 97) * 50;
    for _ in 0..spins {
        h = h.rotate_left(7) ^ 0xbf58_476d_1ce4_e5b9;
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40).with_seed(0x0073_7465_616c))] // b"steal"

    /// Stealing order never changes `run_map` output: any thread count
    /// produces exactly the sequential result, for skewed workloads of any
    /// size (including sizes that don't divide evenly into owner ranges).
    #[test]
    fn stealing_never_changes_run_map_output(
        items in 0usize..400,
        salt in any::<u64>(),
        threads in 1usize..6,
    ) {
        let expected: Vec<u64> = (0..items).map(|i| loaded(i, salt)).collect();
        let mut pool = WorkerPool::new(threads);
        // several rounds on the same pool: cursors/generations must reset
        for round in 0..3 {
            let out = pool.run_map(items, &|_w, i, _s| loaded(i, salt));
            prop_assert_eq!(&out, &expected, "threads={} round={}", threads, round);
        }
    }
}

#[test]
fn stolen_chunk_panics_propagate_without_deadlock() {
    // every worker range contains panicking items, so whichever worker
    // (owner or thief) runs them must both finish the chunk's remaining
    // items and keep the completion count exact
    let mut pool = WorkerPool::new(4);
    let executed = AtomicUsize::new(0);
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.run_map(300, &|_w, i, _s| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i % 29 == 0 {
                panic!("chunk item {i} down");
            }
            i as u64
        })
    }));
    assert!(r.is_err(), "panic must reach the dispatcher");
    // the job fully drained: every item ran exactly once even though some
    // panicked mid-chunk
    assert_eq!(executed.load(Ordering::Relaxed), 300);
    // and the pool is still alive for the next job
    let out = pool.run_map(64, &|_w, i, _s| i + 1);
    assert_eq!(out, (1..=64).collect::<Vec<_>>());
}

#[test]
fn scratch_high_water_survives_stealing() {
    let mut pool = WorkerPool::new(3);
    pool.run_map(200, &|_w, i, s| {
        s.begin(1024);
        s.visited.insert((i % 1024) as u32);
    });
    assert!(
        pool.scratch_high_water() >= 1024,
        "high-water must reflect the arenas tasks actually used, owner or stolen"
    );
}
