//! Cross-validation of the exact solvers against each other.
//!
//! The ground-truth oracles the workspace leans on — Hopcroft–Karp,
//! Hungarian (successive shortest paths), the blossom algorithm,
//! exhaustive brute force, and the slack-array oracle of `wmatch-oracle` —
//! implement very different algorithms, so their agreement on the same
//! instances is strong evidence for all of them. Everything here is
//! deterministic: instances come from seeded generators.

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_graph::exact::{
    max_bipartite_cardinality_matching, max_cardinality_matching, max_weight_bipartite_matching,
    max_weight_matching, max_weight_matching_brute_force,
};
use wmatch_graph::generators::{self, WeightModel};

/// Every (nl, nr) split with 1 <= nl, nr <= 6 (so n = nl + nr up to 12),
/// several densities and seeds per split. Highly asymmetric splits such
/// as (11, 1) are not covered here.
fn bipartite_instances(
    model: WeightModel,
) -> impl Iterator<Item = (wmatch_graph::Graph, Vec<bool>)> {
    let splits: Vec<(usize, usize)> = (1..=6usize)
        .flat_map(|nl| (1..=6usize).map(move |nr| (nl, nr)))
        .collect();
    splits.into_iter().flat_map(move |(nl, nr)| {
        [0.15, 0.4, 0.8]
            .into_iter()
            .enumerate()
            .flat_map(move |(di, p)| {
                (0..3u64).map(move |trial| {
                    let seed = (nl as u64) << 32 | (nr as u64) << 16 | (di as u64) << 8 | trial;
                    let mut rng = StdRng::seed_from_u64(seed);
                    generators::random_bipartite(nl, nr, p, model, &mut rng)
                })
            })
    })
}

/// Hungarian, the general weighted (Galil) solver, the slack-array
/// oracle, and brute force agree on maximum matching *weight* for
/// weighted bipartite instances — and the slack-array certificate passes
/// its independent dual-feasibility check on every instance.
#[test]
fn weighted_solvers_agree_on_bipartite_instances() {
    let mut checked = 0;
    for (g, side) in bipartite_instances(WeightModel::Uniform { lo: 1, hi: 30 }) {
        let hungarian = max_weight_bipartite_matching(&g, &side);
        let general = max_weight_matching(&g);
        let brute = max_weight_matching_brute_force(&g);
        let slack = wmatch_oracle::certify_max_weight(&g, &side).unwrap();
        assert_eq!(
            hungarian.weight(),
            brute.weight(),
            "hungarian vs brute force on {g}"
        );
        assert_eq!(
            general.weight(),
            brute.weight(),
            "general (Galil) vs brute force on {g}"
        );
        assert_eq!(
            slack.optimum,
            brute.weight(),
            "slack-array oracle vs brute force on {g}"
        );
        slack.verify(&g, &side).unwrap();
        hungarian.validate(Some(&g)).unwrap();
        general.validate(Some(&g)).unwrap();
        brute.validate(Some(&g)).unwrap();
        slack.matching.validate(Some(&g)).unwrap();
        checked += 1;
    }
    assert_eq!(checked, 6 * 6 * 3 * 3, "instance family changed size");
}

/// Hopcroft–Karp, blossom, the Gabow-style unit-weight reduction, and
/// brute force agree on maximum matching *cardinality* for unit-weight
/// bipartite instances (where cardinality equals brute-force weight) —
/// and the reduction's König cover certifies each optimum independently.
#[test]
fn cardinality_solvers_agree_on_bipartite_instances() {
    for (g, side) in bipartite_instances(WeightModel::Unit) {
        let hk = max_bipartite_cardinality_matching(&g, &side);
        let blossom = max_cardinality_matching(&g);
        let brute = max_weight_matching_brute_force(&g);
        let gabow = wmatch_oracle::certify_max_cardinality(&g, &side).unwrap();
        assert_eq!(
            hk.len() as i128,
            brute.weight(),
            "hopcroft-karp vs brute force on {g}"
        );
        assert_eq!(
            blossom.len() as i128,
            brute.weight(),
            "blossom vs brute force on {g}"
        );
        assert_eq!(
            gabow.optimum,
            brute.weight(),
            "gabow reduction vs brute force on {g}"
        );
        gabow.verify(&g).unwrap();
        hk.validate(Some(&g)).unwrap();
        blossom.validate(Some(&g)).unwrap();
    }
}

/// On weighted bipartite instances the weighted optima dominate any
/// cardinality-optimal matching's weight, and with unit weights the
/// weighted and cardinality optima coincide — a consistency relation
/// across all four solvers.
#[test]
fn weighted_and_cardinality_optima_are_consistent() {
    for (g, side) in bipartite_instances(WeightModel::Uniform { lo: 1, hi: 9 }) {
        let weighted_opt = max_weight_bipartite_matching(&g, &side).weight();
        let card = max_bipartite_cardinality_matching(&g, &side);
        let card_weight: i128 = card.iter().map(|e| e.weight as i128).sum();
        assert!(
            weighted_opt >= card_weight,
            "weighted optimum {weighted_opt} below a cardinality matching's weight \
             {card_weight} on {g}"
        );

        let unit = g.unweighted_copy();
        let unit_weighted = max_weight_matching(&unit).weight();
        let unit_card = max_cardinality_matching(&unit).len() as i128;
        assert_eq!(
            unit_weighted, unit_card,
            "unit-weight optima differ on {unit}"
        );
    }
}

/// Dense small general (non-bipartite) graphs: blossom cardinality equals
/// brute force, and the weighted general solver equals brute force — the
/// blossom contraction paths get exercised beyond what bipartite
/// instances can reach.
#[test]
fn general_graph_solvers_agree_up_to_n_10() {
    for n in 2..=10usize {
        for trial in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(n as u64 * 1000 + trial);
            let g = generators::gnp(n, 0.5, WeightModel::Uniform { lo: 1, hi: 20 }, &mut rng);
            let brute = max_weight_matching_brute_force(&g);
            assert_eq!(
                max_weight_matching(&g).weight(),
                brute.weight(),
                "general solver vs brute force on {g}"
            );
            let unit = g.unweighted_copy();
            assert_eq!(
                max_cardinality_matching(&unit).len() as i128,
                max_weight_matching_brute_force(&unit).weight(),
                "blossom vs brute force on {unit}"
            );
        }
    }
}
