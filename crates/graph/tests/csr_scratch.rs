//! Property suite for the flat hot-path substrate: `CsrView` must agree
//! with the legacy per-vertex adjacency semantics (edge-index lists in
//! insertion order) on random, parallel-edge, and star graphs, and the
//! epoch-stamped `Scratch` structures must never leak marks across resets.

use proptest::prelude::*;

use wmatch_graph::scratch::{EpochMap, EpochSet};
use wmatch_graph::{Edge, Graph, Vertex};

/// The adjacency the legacy representation maintained eagerly: for each
/// vertex, the incident edge indices in insertion order. `CsrView` must
/// reproduce it exactly.
fn reference_adjacency(n: usize, edges: &[Edge]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for (idx, e) in edges.iter().enumerate() {
        adj[e.u as usize].push(idx);
        adj[e.v as usize].push(idx);
    }
    adj
}

fn assert_csr_agrees(g: &Graph) {
    let reference = reference_adjacency(g.vertex_count(), g.edges());
    let csr = g.csr();
    for v in 0..g.vertex_count() as Vertex {
        let want: Vec<usize> = reference[v as usize].clone();
        let got: Vec<usize> = csr.edge_ids(v).iter().map(|&i| i as usize).collect();
        assert_eq!(got, want, "edge ids of vertex {v}");
        assert_eq!(csr.degree(v), want.len(), "degree of vertex {v}");
        let nbrs: Vec<Vertex> = csr.neighbors(v).to_vec();
        let want_nbrs: Vec<Vertex> = want.iter().map(|&i| g.edge(i).other(v)).collect();
        assert_eq!(nbrs, want_nbrs, "neighbours of vertex {v}");
        let inc: Vec<(usize, Vertex)> = csr.incidences(v).collect();
        let want_inc: Vec<(usize, Vertex)> =
            want.iter().map(|&i| (i, g.edge(i).other(v))).collect();
        assert_eq!(inc, want_inc, "incidences of vertex {v}");
        // the Graph-level iterators ride the same view
        let api: Vec<usize> = g.incident(v).map(|(i, _)| i).collect();
        assert_eq!(api, want, "Graph::incident of vertex {v}");
        assert_eq!(g.neighbors(v).collect::<Vec<_>>(), want_nbrs);
    }
}

/// A random multigraph: parallel edges allowed on purpose.
fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u64..=100), 0..=max_m).prop_map(
            move |raw| {
                let mut g = Graph::new(n);
                for (u, v, w) in raw {
                    if u != v {
                        g.add_edge(u, v, w);
                    }
                }
                g
            },
        )
    })
}

proptest! {
    // Seed pinned for reproducibility: every run explores the same cases.
    #![proptest_config(ProptestConfig::with_cases(200).with_seed(0x0063_7372_7363))] // b"csrsc"

    /// CSR iteration order and content agree with the legacy adjacency on
    /// random multigraphs (parallel edges included).
    #[test]
    fn csr_agrees_on_random_multigraphs(g in arb_multigraph(24, 60)) {
        assert_csr_agrees(&g);
    }

    /// Star graphs: one hub vertex carries every incidence.
    #[test]
    fn csr_agrees_on_stars(leaves in 1usize..40, dup in 1usize..3) {
        let mut g = Graph::new(leaves + 1);
        for l in 0..leaves as u32 {
            for _ in 0..dup {
                g.add_edge(0, l + 1, (l + 1) as u64);
            }
        }
        assert_csr_agrees(&g);
        prop_assert_eq!(g.degree(0), leaves * dup);
    }

    /// Heavy parallel-edge graphs: every pair repeated several times.
    #[test]
    fn csr_agrees_on_parallel_edges(pairs in 1usize..8, copies in 2usize..5) {
        let mut g = Graph::new(2 * pairs);
        for p in 0..pairs as u32 {
            for c in 0..copies as u64 {
                g.add_edge(2 * p, 2 * p + 1, c + 1);
            }
        }
        assert_csr_agrees(&g);
        prop_assert!(!g.is_simple());
    }

    /// The cached view stays consistent across interleaved mutation.
    #[test]
    fn csr_survives_incremental_growth(g in arb_multigraph(12, 24)) {
        let mut h = Graph::new(g.vertex_count());
        for e in g.edges() {
            h.add_edge(e.u, e.v, e.weight);
            // query mid-build: forces rebuild-on-mutation to stay coherent
            assert_csr_agrees(&h);
        }
        prop_assert_eq!(&h, &g);
    }

    /// Epoch reset never leaks marks: any insert pattern followed by a
    /// clear leaves the set observably empty, across many epochs.
    #[test]
    fn epoch_set_never_leaks(rounds in proptest::collection::vec(
        proptest::collection::vec(0u32..64, 0..20), 1..12)) {
        let mut s = EpochSet::new();
        s.ensure(64);
        for marks in &rounds {
            for &v in marks {
                s.insert(v);
                prop_assert!(s.contains(v));
            }
            s.clear();
            for v in 0..64 {
                prop_assert!(!s.contains(v), "mark {v} leaked across reset");
            }
        }
    }

    /// Same for the dense map: stale bindings from earlier epochs are
    /// never visible, and rebinding within an epoch overwrites.
    #[test]
    fn epoch_map_never_leaks(rounds in proptest::collection::vec(
        proptest::collection::vec((0u32..48, 0u64..1000), 0..16), 1..10)) {
        let mut m: EpochMap<u64> = EpochMap::new();
        m.ensure(48);
        for bindings in &rounds {
            let mut shadow = std::collections::HashMap::new();
            for &(v, x) in bindings {
                m.insert(v, x);
                shadow.insert(v, x);
            }
            for v in 0..48 {
                prop_assert_eq!(m.get(v), shadow.get(&v).copied());
            }
            m.clear();
            for v in 0..48 {
                prop_assert_eq!(m.get(v), None, "binding of {} leaked", v);
            }
        }
    }
}

#[test]
fn clone_preserves_cache_and_equality() {
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    let _ = g.csr();
    let h = g.clone();
    assert_eq!(g, h);
    assert_csr_agrees(&h);
    // equality ignores derived CSR state: a never-queried twin is equal
    let fresh = Graph::from_edges(3, g.edges().iter().copied());
    assert_eq!(g, fresh);
}
