//! Counting-allocator proof that the migrated DFS inner loop of
//! `aug_search` performs zero per-call heap allocations.
//!
//! The searcher's buffers (epoch-stamped visited marks, walk stacks) are
//! sized on the first call; a second call on the same instance must not
//! touch the allocator at all while it explores — the acceptance criterion
//! of the flat hot-path refactor. This file holds a single test so no
//! concurrent test thread can perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use wmatch_graph::aug_search::AugSearcher;
use wmatch_graph::{Graph, Matching};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn dfs_inner_loop_is_allocation_free() {
    // k disjoint paths a-u-v-b with a heavy middle: the matching holding
    // every middle edge admits no positive augmentation, so the searcher
    // explores every alternating walk without ever materializing one
    let k = 500usize;
    let mut g = Graph::new(4 * k);
    let mut middles = Vec::new();
    for i in 0..k as u32 {
        let b = 4 * i;
        g.add_edge(b, b + 1, 1);
        let mid = g.add_edge(b + 1, b + 2, 10);
        g.add_edge(b + 2, b + 3, 1);
        middles.push(g.edge(mid));
    }
    let m = Matching::from_edges(4 * k, middles).unwrap();

    let mut searcher = AugSearcher::new();
    // warm-up: builds the CSR view and sizes the searcher's buffers
    assert!(searcher.best_augmentation(&g, &m, 5).is_none());

    let before = allocations();
    let found = searcher.best_augmentation(&g, &m, 5);
    let during = allocations() - before;
    assert!(found.is_none(), "the matching is locally optimal");
    assert_eq!(
        during, 0,
        "warmed-up DFS inner loop must not touch the allocator ({during} allocations)"
    );

    // and it still finds real augmentations when they exist: weaken one
    // middle so its wings win
    let mut g2 = Graph::new(4);
    g2.add_edge(0, 1, 9);
    g2.add_edge(1, 2, 10);
    g2.add_edge(2, 3, 9);
    let m2 = Matching::from_edges(4, [g2.edge(1)]).unwrap();
    let aug = searcher.best_augmentation(&g2, &m2, 3).unwrap();
    assert_eq!(aug.gain(), 8);
}
