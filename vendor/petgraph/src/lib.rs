//! Offline stand-in for the [`petgraph`](https://crates.io/crates/petgraph)
//! crate.
//!
//! Implements the subset the `wmatch` test suites use as an *independent
//! oracle*: [`graph::UnGraph`] construction and
//! [`algo::matching::maximum_matching`] — a from-scratch O(V³) blossom
//! (Edmonds) maximum-cardinality matching, deliberately a different
//! implementation lineage than `wmatch_graph::exact::blossom` so that
//! cross-checks between the two are meaningful.

pub mod graph {
    /// Index of a node in an [`UnGraph`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct NodeIndex(pub(crate) u32);

    impl NodeIndex {
        pub fn new(i: usize) -> Self {
            NodeIndex(i as u32)
        }

        pub fn index(self) -> usize {
            self.0 as usize
        }
    }

    /// Index of an edge in an [`UnGraph`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct EdgeIndex(pub(crate) u32);

    /// An undirected graph with node weights `N` and edge weights `E`.
    #[derive(Clone, Debug, Default)]
    pub struct UnGraph<N, E> {
        pub(crate) nodes: Vec<N>,
        pub(crate) edges: Vec<(u32, u32, E)>,
    }

    impl<N, E> UnGraph<N, E> {
        pub fn new_undirected() -> Self {
            UnGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
            }
        }

        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            NodeIndex((self.nodes.len() - 1) as u32)
        }

        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
            self.edges.push((a.0, b.0, weight));
            EdgeIndex((self.edges.len() - 1) as u32)
        }

        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }
    }
}

pub mod algo {
    pub mod matching {
        use crate::graph::{NodeIndex, UnGraph};

        const NONE: usize = usize::MAX;

        /// A maximum matching as a mate table.
        #[derive(Clone, Debug)]
        pub struct Matching {
            mate: Vec<usize>,
        }

        impl Matching {
            /// Matched pairs `(a, b)` with `a < b`, each reported once.
            pub fn edges(&self) -> impl Iterator<Item = (NodeIndex, NodeIndex)> + '_ {
                self.mate
                    .iter()
                    .enumerate()
                    .filter(|&(v, &m)| m != NONE && v < m)
                    .map(|(v, &m)| (NodeIndex::new(v), NodeIndex::new(m)))
            }

            /// `true` if `v` has a mate.
            pub fn contains_node(&self, v: NodeIndex) -> bool {
                self.mate.get(v.index()).is_some_and(|&m| m != NONE)
            }

            pub fn mate(&self, v: NodeIndex) -> Option<NodeIndex> {
                match self.mate.get(v.index()) {
                    Some(&m) if m != NONE => Some(NodeIndex::new(m)),
                    _ => None,
                }
            }
        }

        /// Maximum-cardinality matching in a general undirected graph via
        /// Edmonds' blossom algorithm (BFS formulation, O(V³)).
        pub fn maximum_matching<N, E>(g: &UnGraph<N, E>) -> Matching {
            let n = g.node_count();
            let mut adj = vec![Vec::new(); n];
            for &(u, v, _) in &g.edges {
                let (u, v) = (u as usize, v as usize);
                if u != v {
                    adj[u].push(v);
                    adj[v].push(u);
                }
            }

            let mut mate = vec![NONE; n];
            for root in 0..n {
                if mate[root] == NONE {
                    find_augmenting_path(root, &adj, &mut mate);
                }
            }
            Matching { mate }
        }

        /// One BFS phase from `root`; augments `mate` in place on success.
        fn find_augmenting_path(root: usize, adj: &[Vec<usize>], mate: &mut [usize]) {
            let n = adj.len();
            let mut parent = vec![NONE; n];
            let mut base: Vec<usize> = (0..n).collect();
            let mut in_tree = vec![false; n];
            let mut queue = std::collections::VecDeque::new();

            in_tree[root] = true;
            queue.push_back(root);

            while let Some(v) = queue.pop_front() {
                for &to in &adj[v] {
                    if base[v] == base[to] || mate[v] == to {
                        continue;
                    }
                    if to == root || (mate[to] != NONE && parent[mate[to]] != NONE) {
                        // `to` is an even-level vertex: contract a blossom.
                        let curbase = lowest_common_ancestor(v, to, mate, &parent, &base);
                        let mut in_blossom = vec![false; n];
                        mark_path(v, curbase, to, mate, &mut parent, &base, &mut in_blossom);
                        mark_path(to, curbase, v, mate, &mut parent, &base, &mut in_blossom);
                        for i in 0..n {
                            if in_blossom[base[i]] {
                                base[i] = curbase;
                                if !in_tree[i] {
                                    in_tree[i] = true;
                                    queue.push_back(i);
                                }
                            }
                        }
                    } else if parent[to] == NONE {
                        parent[to] = v;
                        if mate[to] == NONE {
                            // Augment along root..to and finish this phase.
                            let mut v = to;
                            while v != NONE {
                                let pv = parent[v];
                                let ppv = mate[pv];
                                mate[v] = pv;
                                mate[pv] = v;
                                v = ppv;
                            }
                            return;
                        } else {
                            in_tree[mate[to]] = true;
                            queue.push_back(mate[to]);
                        }
                    }
                }
            }
        }

        fn lowest_common_ancestor(
            a: usize,
            b: usize,
            mate: &[usize],
            parent: &[usize],
            base: &[usize],
        ) -> usize {
            let mut seen = vec![false; base.len()];
            let mut a = base[a];
            loop {
                seen[a] = true;
                if mate[a] == NONE {
                    break;
                }
                a = base[parent[mate[a]]];
            }
            let mut b = base[b];
            loop {
                if seen[b] {
                    return b;
                }
                b = base[parent[mate[b]]];
            }
        }

        fn mark_path(
            mut v: usize,
            curbase: usize,
            mut child: usize,
            mate: &[usize],
            parent: &mut [usize],
            base: &[usize],
            in_blossom: &mut [bool],
        ) {
            while base[v] != curbase {
                in_blossom[base[v]] = true;
                in_blossom[base[mate[v]]] = true;
                parent[v] = child;
                child = mate[v];
                v = parent[mate[v]];
            }
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            fn graph_from(n: usize, edges: &[(u32, u32)]) -> UnGraph<(), ()> {
                let mut g = UnGraph::new_undirected();
                let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
                for &(u, v) in edges {
                    g.add_edge(nodes[u as usize], nodes[v as usize], ());
                }
                g
            }

            #[test]
            fn path_and_triangle() {
                let p4 = graph_from(4, &[(0, 1), (1, 2), (2, 3)]);
                assert_eq!(maximum_matching(&p4).edges().count(), 2);
                let tri = graph_from(3, &[(0, 1), (1, 2), (2, 0)]);
                assert_eq!(maximum_matching(&tri).edges().count(), 1);
            }

            #[test]
            fn blossom_needed_instances() {
                // Two triangles joined by a bridge: perfect matching of size 3
                // only reachable via blossom contraction.
                let g = graph_from(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
                assert_eq!(maximum_matching(&g).edges().count(), 3);
                // Odd cycle C5 plus a pendant: matching size 3.
                let g = graph_from(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5)]);
                assert_eq!(maximum_matching(&g).edges().count(), 3);
            }

            #[test]
            fn matching_is_consistent() {
                let g = graph_from(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
                let m = maximum_matching(&g);
                for (a, b) in m.edges() {
                    assert_eq!(m.mate(a), Some(b));
                    assert_eq!(m.mate(b), Some(a));
                    assert!(m.contains_node(a) && m.contains_node(b));
                }
                assert_eq!(m.edges().count(), 2);
            }

            #[test]
            fn exhaustive_small_graphs_match_brute_force() {
                // All graphs on 5 vertices (1024 edge subsets): blossom
                // must equal brute-force maximum matching size.
                let all_edges: Vec<(u32, u32)> = (0..5u32)
                    .flat_map(|u| (u + 1..5).map(move |v| (u, v)))
                    .collect();
                for mask in 0u32..(1 << all_edges.len()) {
                    let chosen: Vec<(u32, u32)> = all_edges
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, e)| *e)
                        .collect();
                    let g = graph_from(5, &chosen);
                    let ours = maximum_matching(&g).edges().count();
                    assert_eq!(ours, brute_force(5, &chosen), "mask {mask}");
                }
            }

            fn brute_force(n: usize, edges: &[(u32, u32)]) -> usize {
                fn go(edges: &[(u32, u32)], used: &mut Vec<bool>) -> usize {
                    if edges.is_empty() {
                        return 0;
                    }
                    let (u, v) = edges[0];
                    let rest = &edges[1..];
                    let mut best = go(rest, used);
                    if !used[u as usize] && !used[v as usize] {
                        used[u as usize] = true;
                        used[v as usize] = true;
                        best = best.max(1 + go(rest, used));
                        used[u as usize] = false;
                        used[v as usize] = false;
                    }
                    best
                }
                go(edges, &mut vec![false; n])
            }
        }
    }
}
