//! Collection strategies (upstream `proptest::collection`).

use rand::{Rng, StdRng};

use crate::Strategy;

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec`s whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = vec(0u32..10, 2..=5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
        // `0..n` and plain `usize` conversions
        let exact = vec(0u32..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let half_open = vec(0u32..10, 0..4);
        for _ in 0..100 {
            assert!(half_open.generate(&mut rng).len() < 4);
        }
    }
}
