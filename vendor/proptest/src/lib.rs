//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset the `wmatch` workspace uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, integer-range, tuple and
//! [`collection::vec`] strategies, [`bool::ANY`], the [`proptest!`] macro
//! and the `prop_assert*` family, and a [`test_runner::ProptestConfig`]
//! carrying a **pinned seed** so every run explores the same cases.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics immediately, printing the test
//!   name, case index and derived seed so it can be replayed;
//! * the RNG is the workspace's vendored [`rand::StdRng`].

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Boolean strategies (upstream `proptest::bool`).
pub mod bool {
    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// The canonical boolean strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl crate::Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut rand::StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies exist directly on range types; `num` mirrors the
/// upstream module layout for discoverability.
pub mod num {}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{SeedableRng, StdRng};

    /// FNV-1a, used to give every test its own deterministic stream.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf29ce484222325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x100000001b3);
            i += 1;
        }
        hash
    }

    /// The RNG for one test case: seed ⊕ test-name hash, advanced per case.
    pub fn case_rng(config_seed: u64, test_hash: u64, case: u32) -> StdRng {
        let seed = config_seed ^ test_hash ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        StdRng::seed_from_u64(seed)
    }
}

/// The heart of the stand-in: expands each `fn name(pat in strategy, ..)`
/// into a plain `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let test_hash = $crate::__rt::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..cases {
                    let mut __rng =
                        $crate::__rt::case_rng(config.seed, test_hash, __case);
                    let __strategies = ($($strat,)+);
                    let ($($pat,)+) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __guard = $crate::test_runner::CasePanicContext::new(
                        stringify!($name), __case, config.seed,
                    );
                    $body
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Upstream `prop_assert!`: in this stand-in, a panic-on-failure assert.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Upstream `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Upstream `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
