//! The [`Strategy`] trait and its combinators.
//!
//! A strategy here is just a deterministic function from an RNG state to a
//! value — no shrink trees, no value trees.

use rand::{Rng, StdRng};

/// Generates values of type `Value` from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it
    /// (upstream `prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Retry until the predicate holds (upstream `prop_filter`); gives up
    /// after a fixed number of rejections.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        let inner = (self.f)(self.base.generate(rng));
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter gave up after 10000 rejections: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the given value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of a sampleable type (upstream `any::<T>()`).
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_standard(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (1u32..5, 10u64..=20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((11..=24).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (2usize..=6).prop_flat_map(|n| (0..n as u32).prop_map(move |x| (n, x)));
        for _ in 0..200 {
            let (n, x) = strat.generate(&mut rng);
            assert!((x as usize) < n);
        }
    }

    #[test]
    fn just_and_filter() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Just(41).generate(&mut rng), 41);
        let even = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }
}
