//! Test-runner configuration (upstream `proptest::test_runner`).

/// Configuration for one `proptest!` block.
///
/// Unlike upstream, the RNG seed is part of the config and defaults to a
/// fixed constant, so test runs are reproducible by default. Set the
/// `PROPTEST_CASES` environment variable to override the case count (e.g.
/// for a quick smoke run).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
    /// Base seed; combined with a per-test hash and the case index.
    pub seed: u64,
}

/// The workspace-wide default seed ("wmatch" pinned forever; change it and
/// every property suite explores a different corner of instance space).
pub const DEFAULT_SEED: u64 = 0x77_6d_61_74_63_68; // b"wmatch"

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: DEFAULT_SEED,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with the default pinned seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(s) => s.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Prints replay information if a test case panics (the stand-in for
/// upstream's persisted failure seeds).
pub struct CasePanicContext {
    name: &'static str,
    case: u32,
    seed: u64,
    armed: bool,
}

impl CasePanicContext {
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CasePanicContext {
            name,
            case,
            seed,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CasePanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: test `{}` failed at case {} (config seed {:#x}); \
                 rerun with the same seed to replay",
                self.name, self.case, self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_keeps_pinned_seed() {
        let cfg = ProptestConfig::with_cases(64);
        assert_eq!(cfg.cases, 64);
        assert_eq!(cfg.seed, DEFAULT_SEED);
        let custom = ProptestConfig::with_cases(10).with_seed(42);
        assert_eq!(custom.seed, 42);
    }
}
