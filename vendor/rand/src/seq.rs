//! Sequence helpers (upstream `rand::seq`).

use crate::{Rng, RngCore};

/// Slice extensions: uniform shuffling and element choice.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, uniform over permutations.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
