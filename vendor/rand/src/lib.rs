//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the API subset the `wmatch` workspace uses: [`rngs::StdRng`]
//! (backed by xoshiro256++ seeded through splitmix64), the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Seeded streams are reproducible across runs and platforms, but do **not**
//! match the value stream of the upstream crate.

pub mod rngs;
pub mod seq;

/// Core RNG interface: a source of uniformly distributed words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the upstream crate's
/// `Standard` distribution, folded into a trait).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing extension trait (upstream `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs (upstream `rand::SeedableRng`), reduced to the u64 entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    fn from_entropy() -> Self {
        // No OS entropy hook in the stand-in: derive a seed from the
        // monotonic clock. Good enough for non-cryptographic use.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

pub use rngs::StdRng;
