//! RNG implementations: [`StdRng`], a xoshiro256++ generator.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ seeded via splitmix64.
///
/// Fast, passes BigCrush, and fully deterministic per seed — but not the
/// same value stream as upstream `rand::rngs::StdRng` (ChaCha12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro requires a nonzero state; splitmix64 over four words is
        // never all-zero in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(0..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
