//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the `wmatch` benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`] and
//! [`Throughput`]. Instead of the upstream statistics engine, each
//! benchmark runs a short warm-up plus a fixed measurement loop and prints
//! mean wall-clock time per iteration. `CRITERION_STUB_ITERS` overrides
//! the measurement iteration count (default 10).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Runs closures and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream builder hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: R) {
        run_one(&id.to_string(), None, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream sample-size control; recorded but unused by the stub loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream measurement-time control; unused by the stub loop.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: R) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
    }

    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: R) {
    // Warm-up: one untimed iteration.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let iters = measure_iters();
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("  {label}: {:.6} ms/iter{rate}", per_iter * 1e3);
}

/// Upstream `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Upstream `criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("CRITERION_STUB_ITERS", "2");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 7));
        group.finish();
    }
}
