//! A million-user marketplace as a matching service: buyers and sellers
//! stream offers in, listings expire, and the dispatcher keeps a
//! certified near-optimal assignment live the whole time — sharded, so
//! ingest batches can be speculated in parallel while the committed
//! state stays bit-identical to a sequential replay.
//!
//! Drives `wmatch_dynamic::ShardedMatcher` directly over a
//! hotspot-skewed sliding-window stream (a few hot users dominate the
//! traffic; offers expire after a window), reporting throughput and
//! batch-amortized p50/p99 ingest latency per reporting interval.
//!
//! Ingest goes through the fault-tolerant [`ServeDriver`]: a batch that
//! trips a fault is not an abort — the driver surfaces the partial
//! progress ([`wmatch_dynamic::BatchStats`]), retries transient
//! rejections with bounded backoff, skips malformed ops, and keeps the
//! marketplace live. Pass `chaos` to inject a deterministic fault storm
//! (poisoned ops + a mid-repair worker panic per batch) and watch the
//! service degrade and recover instead of falling over.
//!
//! ```text
//! cargo run --release -p wmatch-examples --example marketplace            # 10⁶ users
//! cargo run --release -p wmatch-examples --example marketplace -- quick  # scaled down
//! cargo run --release -p wmatch-examples --example marketplace -- quick chaos
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::{
    ChaosConfig, DynamicConfig, RetryPolicy, ServeDriver, ShardedMatcher, UpdateOp,
};
use wmatch_graph::Vertex;

/// Nearest-rank percentile over sorted samples.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let chaos = std::env::args().any(|a| a == "chaos");
    let (n, total_ops) = if quick {
        (10_000usize, 100_000usize)
    } else {
        (1_000_000, 2_000_000)
    };
    let shards = 8usize;
    let batch = 256usize;
    let window = (n / 2).max(8);
    let mut rng = StdRng::seed_from_u64(0xE12);

    println!("marketplace: {n} users, {total_ops} updates, {shards} shards, batch {batch}");
    println!("(offers expire after a {window}-listing window; hot users dominate the stream)");
    if chaos {
        println!("chaos: poisoning ~1% of ops and panicking a speculation worker every ~4 batches");
    }
    println!();
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "ops", "updates/s", "p50 µs", "p99 µs", "value", "fallbacks", "recourse/op"
    );

    // chaos runs multi-threaded so the worker-panic fault class (caught
    // per overlap group, re-run sequentially) actually exercises
    let threads = if chaos { 4 } else { 1 };
    let mut eng = ShardedMatcher::new(
        n,
        DynamicConfig::default().with_seed(7).with_threads(threads),
        shards,
    )
    .with_batch_size(batch);
    if chaos {
        wmatch_dynamic::silence_injected_panics();
        eng.install_chaos(
            ChaosConfig::new()
                .with_seed(0xC4405)
                .with_poison_every(97)
                .with_panic_every(4)
                .with_bitflip_every(0),
        );
    }
    let mut driver = ServeDriver::new(RetryPolicy::default());
    let mut live: std::collections::VecDeque<(Vertex, Vertex)> =
        std::collections::VecDeque::with_capacity(window + 1);
    let mut ops: Vec<UpdateOp> = Vec::with_capacity(batch);
    let mut lat_us: Vec<f64> = Vec::new();
    let mut interval_busy = 0.0f64;
    let mut interval_ops = 0usize;
    let mut applied = 0usize;
    let mut last_fallbacks = 0u64;
    let mut last_recourse = 0u64;
    let report_every = total_ops / 10;

    while applied < total_ops {
        ops.clear();
        while ops.len() < batch && applied + ops.len() < total_ops {
            // hot side: power-law skew concentrates offers on low ids
            let r: f64 = rng.gen();
            let u = (r.powf(1.5) * n as f64) as Vertex;
            let mut v = rng.gen_range(0..n as Vertex);
            if v == u {
                v = (v + 1) % n as Vertex;
            }
            ops.push(UpdateOp::insert(u, v, rng.gen_range(1..=1_000)));
            live.push_back((u, v));
            if live.len() > window && applied + ops.len() < total_ops {
                let (du, dv) = live.pop_front().expect("window is non-empty");
                ops.push(UpdateOp::delete(du, dv));
            }
        }
        let t = Instant::now();
        // the driver never aborts: partial progress (BatchStats) is
        // surfaced, transient faults are retried with backoff, malformed
        // ops are skipped, and a fault storm degrades instead of failing
        let stats = driver.serve(&mut eng, &ops);
        debug_assert!(stats.applied <= ops.len());
        let dt = t.elapsed().as_secs_f64();
        interval_busy += dt;
        interval_ops += ops.len();
        lat_us.push(dt * 1e6 / ops.len() as f64);
        applied += ops.len();

        if applied % report_every < batch {
            lat_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let c = eng.counters();
            println!(
                "{:>10} {:>12.0} {:>10.2} {:>10.2} {:>10} {:>10} {:>12.3}",
                applied,
                interval_ops as f64 / interval_busy.max(1e-9),
                percentile(&lat_us, 0.50),
                percentile(&lat_us, 0.99),
                eng.matching().weight(),
                eng.fallbacks() - last_fallbacks,
                (c.recourse_total - last_recourse) as f64 / interval_ops.max(1) as f64,
            );
            last_fallbacks = eng.fallbacks();
            last_recourse = c.recourse_total;
            lat_us.clear();
            interval_busy = 0.0;
            interval_ops = 0;
        }
    }

    driver.finish(&mut eng);
    let c = eng.counters();
    println!();
    println!(
        "total: {} updates over {} users; {} matching edges changed ({:.3}/update), \
         {} plans replayed, {} sequential fallbacks",
        c.updates_applied,
        n,
        c.recourse_total,
        c.recourse_total as f64 / c.updates_applied.max(1) as f64,
        eng.replayed(),
        eng.fallbacks(),
    );
    let d = driver.stats();
    if d.fatal_errors + d.transient_errors + d.storms > 0 || chaos {
        println!(
            "faults: {} malformed ops skipped, {} transient rejections ({} retries), \
             {} storms → {} degraded batches, {} panicked groups re-run sequentially",
            d.skipped_ops,
            d.transient_errors,
            d.retries,
            d.storms,
            d.degraded_batches,
            eng.groups_fallback(),
        );
    }
    if chaos {
        println!(
            "the service stayed live through the fault storm: malformed ops were skipped \
             typed, storms degraded to deferred repairs, and the quality watchdog \
             re-certified the ½ floor (Fact 1.3) at every flush"
        );
    } else {
        println!(
            "the committed matching is bit-identical to a sequential replay and certified \
             ≥ 50% of optimum after every batch (Fact 1.3)"
        );
    }
}
