//! MPC cluster scenario: compute a near-optimal weighted matching of a
//! graph spread over a simulated cluster of machines with near-linear
//! memory each (Theorem 1.2.1), and report the model metrics the paper
//! bounds: rounds and per-machine memory.
//!
//! ```text
//! cargo run -p wmatch-examples --bin mpc_cluster
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::main_alg::{max_weight_matching_mpc, MainAlgConfig};
use wmatch_examples::pct;
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::generators::{gnp, WeightModel};
use wmatch_mpc::{MpcConfig, MpcMcmConfig};

fn main() {
    let n = 80;
    let mut rng = StdRng::seed_from_u64(11);
    let g = gnp(n, 0.2, WeightModel::Uniform { lo: 1, hi: 256 }, &mut rng);
    let machines = (g.edge_count() / n).clamp(2, 8);
    let memory_words = 40 * n; // Θ̃(n) per machine
    println!(
        "cluster: Γ = {machines} machines x S = {memory_words} words; graph n = {n}, m = {}",
        g.edge_count()
    );

    let opt = max_weight_matching(&g).weight();
    println!("exact optimum: {opt}");

    let mut cfg = MainAlgConfig::practical(0.25, 5);
    cfg.max_rounds = 12;
    cfg.trials = 1; // one bipartition per Algorithm-3 round in MPC
    let res = max_weight_matching_mpc(
        &g,
        &cfg,
        MpcConfig::new(machines, memory_words),
        &MpcMcmConfig::for_delta(0.2, 3),
    )
    .expect("instance fits the cluster budgets");

    println!(
        "matching: w = {} ({} of optimum)",
        res.matching.weight(),
        pct(res.matching.weight() as f64 / opt as f64)
    );
    println!(
        "rounds (model, boxes in parallel): {}   rounds (sequential sim): {}",
        res.rounds_model, res.rounds_sequential
    );
    println!(
        "peak per-machine memory: {} words (budget {memory_words}, input m = {})",
        res.peak_machine_words,
        g.edge_count()
    );
    res.matching.validate(Some(&g)).expect("valid matching");
}
