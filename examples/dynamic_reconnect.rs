//! Ride-matching under churn (the motivating workload of the dynamic
//! arrival model): riders and drivers appear and disappear, each viable
//! pairing carries a value, and the dispatcher must keep a near-optimal
//! assignment *while changing as few existing matches as possible* —
//! every reassignment is a rider watching their car drive away.
//!
//! Drives `wmatch_dynamic::DynamicMatcher` directly: a pool of drivers
//! and a stream of rider sessions; each arriving rider opens pairing
//! edges to nearby drivers, each departing rider (ride served or
//! abandoned) closes them. Prints the maintained value, the oracle
//! ratio, and the recourse over time.
//!
//! ```text
//! cargo run -p wmatch-examples --example dynamic_reconnect
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmatch_dynamic::{DynamicConfig, DynamicMatcher, UpdateOp};
use wmatch_examples::pct;
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::Vertex;

/// One rider session: the vertex it occupies and its open pairing edges.
struct Session {
    rider: Vertex,
    edges: Vec<(Vertex, Vertex)>,
}

fn main() {
    let drivers = 40usize; // vertices 0..40
    let riders = 40usize; // vertices 40..80, recycled across sessions
    let n = drivers + riders;
    let mut rng = StdRng::seed_from_u64(2026);

    let mut eng = DynamicMatcher::new(n, DynamicConfig::default().with_seed(7));
    let mut free_rider_slots: Vec<Vertex> = (drivers as Vertex..n as Vertex).collect();
    let mut sessions: Vec<Session> = Vec::new();

    println!("ride matching: {drivers} drivers, {riders} rider slots");
    println!();
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>11} {:>10}",
        "step", "riders", "value", "vs oracle", "recourse/op", "rebuilds"
    );

    let steps = 600;
    let mut last_recourse = 0u64;
    let mut last_updates = 0u64;
    for step in 1..=steps {
        let arrive =
            !free_rider_slots.is_empty() && (sessions.is_empty() || rng.gen_range(0..100) < 55);
        if arrive {
            // a rider appears and sees 2-5 nearby drivers, valued by
            // proximity and surge
            let rider = free_rider_slots.pop().expect("slot available");
            let k = rng.gen_range(2..=5usize);
            let mut edges = Vec::with_capacity(k);
            for _ in 0..k {
                let driver = rng.gen_range(0..drivers as Vertex);
                if edges.iter().any(|&(_, d)| d == driver) {
                    continue;
                }
                let value = rng.gen_range(5..=100u64);
                eng.apply(UpdateOp::insert(rider, driver, value))
                    .expect("well-formed insert");
                edges.push((rider, driver));
            }
            sessions.push(Session { rider, edges });
        } else {
            // a rider leaves (served or gave up): all pairings close
            let i = rng.gen_range(0..sessions.len());
            let s = sessions.swap_remove(i);
            for (r, d) in s.edges {
                eng.apply(UpdateOp::delete(r, d)).expect("edge is live");
            }
            free_rider_slots.push(s.rider);
        }

        if step % 75 == 0 {
            let counters = eng.counters();
            let opt = max_weight_matching(&eng.graph().snapshot()).weight();
            let ratio = if opt == 0 {
                1.0
            } else {
                eng.matching().weight() as f64 / opt as f64
            };
            let d_rec = counters.recourse_total - last_recourse;
            let d_ops = counters.updates_applied - last_updates;
            println!(
                "{:>6} {:>8} {:>9} {:>10} {:>11.3} {:>10}",
                step,
                sessions.len(),
                eng.matching().weight(),
                pct(ratio),
                d_rec as f64 / d_ops.max(1) as f64,
                counters.rebuilds,
            );
            last_recourse = counters.recourse_total;
            last_updates = counters.updates_applied;
        }
    }

    let counters = eng.counters();
    println!();
    println!(
        "total: {} updates, {} matching edges changed ({:.3} per update), {} repair augmentations",
        counters.updates_applied,
        counters.recourse_total,
        counters.recourse_total as f64 / counters.updates_applied.max(1) as f64,
        counters.augmentations_applied,
    );
    println!(
        "the maintained matching is certified ≥ {} of optimum after every single update (Fact 1.3)",
        pct(eng.config().certified_floor()),
    );
}
