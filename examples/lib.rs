//! Shared helpers for the wmatch examples.

use wmatch_graph::Matching;

/// Prints a matching as a one-line summary plus its edges.
pub fn print_matching(label: &str, m: &Matching) {
    println!("{label}: |M| = {}, w(M) = {}", m.len(), m.weight());
    let mut edges = m.to_edges();
    edges.sort();
    let rendered: Vec<String> = edges.iter().map(|e| e.to_string()).collect();
    println!("  {}", rendered.join(" "));
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}
