//! Rebuilds the paper's worked figures and prints what the filtering and
//! layering machinery does to them:
//!
//! * **Figure 1** — the τ-threshold filtering that makes unweighted
//!   augmenting paths weight-safe,
//! * **Figure 2** — `Wgt-Aug-Paths` forwarding on the 8-vertex example,
//! * **Figures 3–4** — a layered graph, its layers and filters, and the
//!   translation of an augmenting path back to the original graph
//!   (including the 4-cycle blow-up of Section 1.1.2).
//!
//! ```text
//! cargo run -p wmatch-examples --bin layered_graph_demo
//! ```

use wmatch_core::decompose::decompose_walk;
use wmatch_core::layered::{LayeredSpec, Parametrization};
use wmatch_core::tau::TauPair;
use wmatch_core::wgt_aug_paths::{WapConfig, WgtAugPaths};
use wmatch_examples::print_matching;
use wmatch_graph::exact::max_bipartite_cardinality_matching;
use wmatch_graph::generators;
use wmatch_graph::Augmentation;

fn main() {
    figure1();
    figure2();
    figures3_4();
}

fn figure1() {
    println!("=== Figure 1: the filtering technique ===");
    let (g, m) = generators::fig1_graph();
    println!("graph: {g}; M = {{c,d}}@5; optimum = 8");
    // the filtering: keep unmatched edges at c and d only above thresholds
    // tau_c + tau_d > w({c,d}); tau_c = tau_d = 3 keeps a-c, d-f (and 4,4)
    for (tau_c, tau_d) in [(3u64, 3u64), (2, 4)] {
        let kept: Vec<String> = g
            .edges()
            .iter()
            .filter(|e| !m.contains(e))
            .filter(|e| {
                // edges at c (vertex 2) need w >= tau_c; at d (3) w >= tau_d
                let t = if e.touches(2) { tau_c } else { tau_d };
                e.weight >= t
            })
            .map(|e| e.to_string())
            .collect();
        println!("  tau_c={tau_c}, tau_d={tau_d}: forwarded unmatched edges: {kept:?}");
    }
    println!("  every surviving augmenting path raises the weight: 4+4 > 5\n");
}

fn figure2() {
    println!("=== Figure 2: Wgt-Aug-Paths forwarding ===");
    let (_, m0, dashed) = generators::fig2_graph();
    print_matching("M0", &m0);
    // find a seed that marks {c,d} and {g,h} like the paper's M0' example
    for seed in 0..64 {
        let wap = WgtAugPaths::new(
            m0.clone(),
            &WapConfig {
                seed,
                ..WapConfig::default()
            },
        );
        if wap.is_marked(2) && wap.is_marked(6) && !wap.is_marked(0) && !wap.is_marked(4) {
            println!("seed {seed} reproduces the paper's M0' = {{ {{c,d}}, {{g,h}} }}");
            let mut wap = wap;
            for e in &dashed {
                wap.feed(*e);
            }
            let out = wap.finalize();
            print_matching("finalized", &out.matching);
            println!(
                "  support edges stored: {}, excess stack: {}\n",
                out.support_size, out.excess_stack
            );
            return;
        }
    }
    println!("  (no seed < 64 hit the figure's exact marking — run again)\n");
}

fn figures3_4() {
    println!("=== Figures 3-4: the layered graph and the cycle blow-up ===");
    let (g, m) = generators::four_cycle_eps(4);
    println!("4-cycle with weights (4,5,4,5); M = the weight-4 edges (w = 8)");
    let param = Parametrization::from_sides(vec![true, false, true, false]);
    let tau = TauPair {
        a: vec![4; 6],
        b: vec![5; 5],
    };
    println!(
        "layered graph: W=32, q=32, tau_A = {:?}, tau_B = {:?}",
        tau.a, tau.b
    );
    let spec = LayeredSpec::new(&tau, 32, 32, &param, &m);
    let lg = spec.build(g.edges().iter().copied());
    println!(
        "L': {} layered vertices over {} layers, {} edges ({} matched copies)",
        spec.layered_vertex_count(),
        spec.layers(),
        lg.graph.edge_count(),
        lg.ml_prime.len()
    );
    for t in 0..spec.layers() {
        let kept: Vec<u32> = (0..4u32).filter(|&v| spec.vertex_kept(t, v)).collect();
        println!("  layer {t}: kept original vertices {kept:?}");
    }
    let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
    let walks = lg.augmenting_walks(&m_prime);
    for (vs, es) in &walks {
        println!("augmenting walk in G (translated): {vs:?}");
        for comp in decompose_walk(vs, es) {
            let aug = Augmentation::from_component(&m, &comp).expect("alternating");
            println!("  component of {} edges: gain {}", comp.len(), aug.gain());
        }
    }
    println!("the +2 component is the paper's augmenting cycle (3,4,3,4 example).");
}
