//! Streaming ad-auction scenario (the motivation class of the paper's
//! streaming results): advertisers bid on impression slots, bids arrive
//! one-by-one in random order, and we must maintain a near-optimal weighted
//! assignment in near-linear memory with one pass.
//!
//! Compares the paper's `Rand-Arr-Matching` (Theorem 1.1, ½+c) against
//! online greedy and local-ratio baselines over multiple random arrival
//! orders, and shows the memory footprint.
//!
//! ```text
//! cargo run -p wmatch-examples --bin streaming_auction
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_examples::pct;
use wmatch_graph::exact::max_weight_bipartite_matching;
use wmatch_graph::generators::{random_bipartite, WeightModel};
use wmatch_graph::Matching;
use wmatch_stream::{EdgeStream, VecStream};

fn main() {
    let advertisers = 120;
    let slots = 120;
    let mut rng = StdRng::seed_from_u64(2024);
    // bids follow geometric classes: a few premium advertisers bid orders
    // of magnitude above the long tail
    let (g, side) = random_bipartite(
        advertisers,
        slots,
        0.08,
        WeightModel::GeometricClasses {
            classes: 6,
            base: 4,
        },
        &mut rng,
    );
    println!(
        "auction instance: {advertisers} advertisers x {slots} slots, {} bids",
        g.edge_count()
    );
    let opt = max_weight_bipartite_matching(&g, &side);
    println!("offline optimum (Hungarian): w = {}", opt.weight());
    let opt_w = opt.weight() as f64;

    let seeds: Vec<u64> = (0..10).collect();
    let mut greedy_sum = 0.0;
    let mut lr_sum = 0.0;
    let mut ram_sum = 0.0;
    let mut ram_mem = 0usize;
    for &seed in &seeds {
        // online greedy: accept any bid on two free parties
        let mut s =
            VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(g.vertex_count());
        let mut greedy = Matching::new(g.vertex_count());
        s.stream_pass(&mut |e| {
            let _ = greedy.insert(e);
        });
        greedy_sum += greedy.weight() as f64 / opt_w;

        // local-ratio [PS17]
        let mut s =
            VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(g.vertex_count());
        let mut lr = LocalRatio::new(g.vertex_count());
        s.stream_pass(&mut |e| lr.on_edge(e));
        lr_sum += lr.unwind().weight() as f64 / opt_w;

        // the paper's Rand-Arr-Matching
        let mut s =
            VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(g.vertex_count());
        let mut cfg = RandArrConfig::default();
        cfg.wap.seed = seed;
        let res = rand_arr_matching(&mut s, &cfg);
        ram_sum += res.matching.weight() as f64 / opt_w;
        ram_mem = ram_mem.max(res.stack_size + res.t_size);
    }
    let k = seeds.len() as f64;
    println!("average ratio over {} random arrival orders:", seeds.len());
    println!("  online greedy:        {}", pct(greedy_sum / k));
    println!("  local-ratio [PS17]:   {}", pct(lr_sum / k));
    println!("  Rand-Arr-Matching:    {}", pct(ram_sum / k));
    println!(
        "Rand-Arr-Matching peak stored edges: {ram_mem} (stream has {})",
        g.edge_count()
    );
}
