//! Quickstart: drive every matching algorithm in the workspace through
//! the unified `wmatch-api` facade — one instance, one request, one
//! registry walk — and compare each solver against the exact oracle.
//!
//! ```text
//! cargo run --release -p wmatch-examples --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_api::{registry_for, solve, Effort, Instance, SolveRequest};
use wmatch_examples::pct;
use wmatch_graph::generators::{gnp, WeightModel};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = gnp(60, 0.12, WeightModel::Uniform { lo: 1, hi: 1000 }, &mut rng);
    println!(
        "random instance: n = {}, m = {}, total weight = {}",
        g.vertex_count(),
        g.edge_count(),
        g.total_weight()
    );

    // one request drives every solver; certification compares each result
    // against the exact oracle for the solver's objective
    let req = SolveRequest::new().with_seed(7).with_certify(true);

    // ---- registry walk: everything that can solve an offline instance
    let offline = Instance::offline(g.clone());
    println!("\noffline solvers ({}):", registry_for(&offline).len());
    for s in registry_for(&offline) {
        let r = s.solve(&offline, &req).expect("offline solve");
        r.matching.validate(Some(&g)).expect("valid matching");
        let cert = r.certificate.as_ref().expect("certified run");
        println!(
            "  {:<22} {:>9} = {:>8}   ratio {}   [{}]",
            r.solver,
            cert.objective.to_string(),
            r.value,
            pct(cert.ratio),
            s.capabilities().theorem
        );
    }

    // ---- the same graph as a single-pass random-order stream
    let stream = Instance::random_order(g.clone(), 42);
    println!("\nsingle-pass random-order solvers:");
    for name in ["greedy", "local-ratio", "rand-arr-matching"] {
        let r = solve(name, &stream, &req).expect("stream solve");
        let cert = r.certificate.as_ref().expect("certified run");
        println!(
            "  {:<22} w = {:>8}   ratio {}   ({} pass, {} stored edges)",
            r.solver,
            r.value,
            pct(cert.ratio),
            r.telemetry.passes,
            r.telemetry.peak_stored_edges
        );
    }

    // ---- a multi-pass adversarial stream and an MPC deployment
    let multi = solve(
        "main-alg-streaming",
        &Instance::adversarial(g.clone()),
        &req,
    )
    .expect("streaming solve");
    println!(
        "\nmain-alg-streaming (adversarial): w = {} ratio {} — {} rounds, {} model passes, {} peak edges",
        multi.value,
        pct(multi.certificate.as_ref().unwrap().ratio),
        multi.telemetry.rounds,
        multi.telemetry.passes,
        multi.telemetry.peak_stored_edges
    );
    let mpc =
        solve("main-alg-mpc", &Instance::mpc(g.clone(), 4, 40 * 60), &req).expect("MPC solve");
    println!(
        "main-alg-mpc (4 machines):        w = {} ratio {} — {} model rounds, {} peak machine words",
        mpc.value,
        pct(mpc.certificate.as_ref().unwrap().ratio),
        mpc.telemetry.rounds,
        mpc.telemetry.peak_stored_edges
    );

    // ---- convergence: the (1-eps) machinery reports its per-round trace
    let thorough = solve(
        "main-alg-offline",
        &offline,
        &req.clone().with_effort(Effort::Thorough),
    )
    .expect("thorough solve");
    let opt = thorough.certificate.as_ref().unwrap().optimum as f64;
    println!("\nmain-alg-offline (thorough) convergence by round:");
    for (round, w) in thorough.telemetry.trace.iter().enumerate() {
        println!(
            "  round {:>2}: w = {:>8}  ({})",
            round + 1,
            w,
            pct(*w as f64 / opt)
        );
    }

    // ---- warm start: Theorem 4.1 improves any matching, so polish greedy
    let greedy = solve("greedy", &offline, &SolveRequest::new()).expect("greedy");
    let polished = solve(
        "main-alg-offline",
        &offline,
        &req.with_effort(Effort::Thorough)
            .with_warm_start(greedy.matching),
    )
    .expect("warm-started solve");
    println!(
        "\ngreedy + augmentations: w = {}   ratio {}",
        polished.value,
        pct(polished.certificate.as_ref().unwrap().ratio)
    );
}
