//! Quickstart: build a weighted graph, run the paper's (1−ε) machinery
//! offline, and compare against the exact optimum and the ½-approximation
//! baselines.
//!
//! ```text
//! cargo run -p wmatch-examples --bin quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::main_alg::{max_weight_matching_offline_traced, MainAlgConfig};
use wmatch_examples::{pct, print_matching};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::generators::{gnp, WeightModel};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = gnp(60, 0.12, WeightModel::Uniform { lo: 1, hi: 1000 }, &mut rng);
    println!(
        "random instance: n = {}, m = {}, total weight = {}",
        g.vertex_count(),
        g.edge_count(),
        g.total_weight()
    );

    // ground truth: Galil's exact maximum weight matching
    let opt = max_weight_matching(&g);
    print_matching("exact optimum", &opt);
    let opt_w = opt.weight() as f64;

    // 1/2-approximation baselines
    let greedy = greedy_by_weight(&g);
    println!(
        "greedy (heaviest first):      w = {:>8}   ratio {}",
        greedy.weight(),
        pct(greedy.weight() as f64 / opt_w)
    );
    let mut lr = LocalRatio::new(g.vertex_count());
    for e in g.edges() {
        lr.on_edge(*e);
    }
    let lr_m = lr.unwind();
    println!(
        "local-ratio [PS17]:           w = {:>8}   ratio {}",
        lr_m.weight(),
        pct(lr_m.weight() as f64 / opt_w)
    );

    // the paper's machinery: layered-graph reduction, iterated from empty
    let cfg = MainAlgConfig::practical(0.25, 7);
    let (m, trace) = max_weight_matching_offline_traced(&g, &cfg);
    println!(
        "weighted-via-unweighted:      w = {:>8}   ratio {}",
        m.weight(),
        pct(m.weight() as f64 / opt_w)
    );
    println!("convergence by round:");
    for (round, w) in trace.iter().enumerate() {
        println!(
            "  round {:>2}: w = {:>8}  ({})",
            round + 1,
            w,
            pct(*w as f64 / opt_w)
        );
    }
    m.validate(Some(&g))
        .expect("result is a valid matching of g");

    // warm-started at finer granularity: polish the greedy baseline with
    // the paper's augmentations (Theorem 4.1 improves any matching)
    let mut fine = MainAlgConfig::practical(0.25, 7);
    fine.q = 32;
    fine.trials = 6;
    let (polished, _) =
        wmatch_core::main_alg::max_weight_matching_offline_from(&g, greedy.clone(), &fine);
    println!(
        "greedy + augmentations (q=32): w = {:>7}   ratio {}",
        polished.weight(),
        pct(polished.weight() as f64 / opt_w)
    );
}
