//! End-to-end integration through the unified facade: the offline (1−ε)
//! machinery against the exact solvers, across instance families, all
//! crates involved.

use wmatch_api::{registry_for, solve, Effort, Instance, SolveRequest};
use wmatch_graph::generators;
use wmatch_tests::{ratio_to_opt, test_graph};

#[test]
fn offline_driver_hits_design_target_on_random_graphs() {
    // practical(0.25) targets (1-eps) = 0.75; verify with margin on a batch
    let mut worst: f64 = 1.0;
    for seed in 0..6 {
        let g = test_graph(30, 5.0, 100, seed);
        let inst = Instance::offline(g.clone());
        let r = solve(
            "main-alg-offline",
            &inst,
            &SolveRequest::new().with_seed(seed).with_certify(true),
        )
        .unwrap();
        r.matching.validate(Some(&g)).unwrap();
        worst = worst.min(r.certificate.unwrap().ratio);
    }
    assert!(
        worst >= 0.75,
        "worst ratio {worst} below the (1-ε) design target"
    );
}

#[test]
fn warm_start_dominates_greedy_everywhere() {
    for seed in 0..5 {
        let g = test_graph(36, 5.0, 500, seed + 50);
        let inst = Instance::offline(g.clone());
        let greedy = solve("greedy", &inst, &SolveRequest::new()).unwrap();
        let r = solve(
            "main-alg-offline",
            &inst,
            &SolveRequest::new()
                .with_seed(seed)
                .with_effort(Effort::Thorough)
                .with_warm_start(greedy.matching.clone()),
        )
        .unwrap();
        assert!(
            r.value >= greedy.value,
            "seed {seed}: warm start lost weight: {} < {}",
            r.value,
            greedy.value
        );
        r.matching.validate(Some(&g)).unwrap();
    }
}

#[test]
fn convergence_trace_is_monotone_and_capped_by_opt() {
    let g = test_graph(28, 4.0, 64, 7);
    let inst = Instance::offline(g.clone());
    let r = solve(
        "main-alg-offline",
        &inst,
        &SolveRequest::new()
            .with_seed(1)
            .with_effort(Effort::Thorough)
            .with_certify(true),
    )
    .unwrap();
    let trace = &r.telemetry.trace;
    assert!(!trace.is_empty());
    for w in trace.windows(2) {
        assert!(w[1] >= w[0], "trace not monotone: {trace:?}");
    }
    assert_eq!(*trace.last().unwrap(), r.matching.weight());
    assert!(r.value <= r.certificate.unwrap().optimum);
}

#[test]
fn perfect_matching_improved_only_by_cycles() {
    // alternating cycles: the matching is perfect, no augmenting paths
    // exist; only the cycle blow-up machinery can improve it. This needs a
    // layered configuration finer than the facade's effort levels, so it
    // deliberately exercises the low-level config surface the facade maps
    // onto.
    use wmatch_core::main_alg::{max_weight_matching_offline_from, MainAlgConfig};
    use wmatch_graph::exact::max_weight_matching;

    let (g, m0) = generators::alternating_cycles(3, 2, 4, 5);
    assert_eq!(m0.free_vertices().count(), 0);
    let cfg = MainAlgConfig::practical(0.1, 3)
        .with_q(32)
        .with_max_layers(7)
        .with_trials(16)
        .with_stall_rounds(4);
    let (m, _) = max_weight_matching_offline_from(&g, m0.clone(), &cfg);
    let opt = max_weight_matching(&g).weight();
    assert_eq!(opt, 3 * 2 * 5);
    assert!(
        m.weight() > m0.weight(),
        "cycle machinery must improve the perfect matching"
    );
    assert_eq!(m.weight(), opt, "all three cycles should flip");
}

#[test]
fn heavier_weight_classes_win_conflicts() {
    // two overlapping candidate augmentations in different classes: the
    // heavier class must be preferred by the cross-class greedy sweep
    let mut g = wmatch_graph::Graph::new(4);
    g.add_edge(0, 1, 1000); // heavy single-edge augmentation
    g.add_edge(1, 2, 8); // light competing edge sharing vertex 1
    g.add_edge(2, 3, 6);
    let r = solve(
        "main-alg-offline",
        &Instance::offline(g),
        &SolveRequest::new().with_seed(2),
    )
    .unwrap();
    assert!(
        r.matching.contains_pair(0, 1),
        "heavy edge must be matched: {}",
        r.matching
    );
    assert_eq!(r.value, 1006);
}

#[test]
fn all_families_valid_and_better_than_half() {
    for (name, g) in [
        ("paths3", generators::disjoint_paths3(20)),
        ("barrier", generators::weighted_barrier_paths(15, 100)),
        ("cycles", generators::alternating_cycles(5, 3, 3, 4).0),
    ] {
        let r = solve(
            "main-alg-offline",
            &Instance::offline(g.clone()),
            &SolveRequest::new().with_seed(11),
        )
        .unwrap();
        r.matching.validate(Some(&g)).unwrap();
        let ratio = ratio_to_opt(&g, r.value);
        assert!(ratio >= 0.75, "{name}: ratio {ratio}");
    }
}

#[test]
fn registry_walk_is_consistent_end_to_end() {
    // every solver the registry offers for an offline instance returns a
    // valid matching within the optimum
    let g = test_graph(24, 4.0, 64, 3);
    let inst = Instance::offline(g.clone());
    let req = SolveRequest::new().with_certify(true);
    let solvers = registry_for(&inst);
    assert!(solvers.len() >= 4, "offline registry too small");
    for s in solvers {
        let r = s.solve(&inst, &req).unwrap();
        r.matching.validate(Some(&g)).unwrap();
        let cert = r.certificate.unwrap();
        assert!(cert.ratio <= 1.0 + 1e-9, "{}: above optimum", s.name());
        assert!(
            cert.ratio >= s.capabilities().approx_floor - 1e-9,
            "{}: below declared floor",
            s.name()
        );
    }
}
