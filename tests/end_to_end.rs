//! End-to-end integration: the offline (1−ε) machinery against the exact
//! solvers, across instance families, all crates involved.

use wmatch_core::greedy::greedy_by_weight;
use wmatch_core::main_alg::{
    max_weight_matching_offline, max_weight_matching_offline_from,
    max_weight_matching_offline_traced, MainAlgConfig,
};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::generators;
use wmatch_tests::{ratio_to_opt, test_graph};

#[test]
fn offline_driver_hits_design_target_on_random_graphs() {
    // practical(0.25) targets (1-eps) = 0.75; verify with margin on a batch
    let mut worst: f64 = 1.0;
    for seed in 0..6 {
        let g = test_graph(30, 5.0, 100, seed);
        let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, seed));
        m.validate(Some(&g)).unwrap();
        worst = worst.min(ratio_to_opt(&g, m.weight()));
    }
    assert!(
        worst >= 0.75,
        "worst ratio {worst} below the (1-ε) design target"
    );
}

#[test]
fn warm_start_dominates_greedy_everywhere() {
    for seed in 0..5 {
        let g = test_graph(36, 5.0, 500, seed + 50);
        let greedy = greedy_by_weight(&g);
        let mut cfg = MainAlgConfig::practical(0.25, seed);
        cfg.q = 16;
        let (m, _) = max_weight_matching_offline_from(&g, greedy.clone(), &cfg);
        assert!(
            m.weight() >= greedy.weight(),
            "seed {seed}: warm start lost weight: {} < {}",
            m.weight(),
            greedy.weight()
        );
        m.validate(Some(&g)).unwrap();
    }
}

#[test]
fn convergence_trace_is_monotone_and_capped_by_opt() {
    let g = test_graph(28, 4.0, 64, 7);
    let opt = max_weight_matching(&g).weight();
    let (m, trace) = max_weight_matching_offline_traced(&g, &MainAlgConfig::thorough(0.25, 1));
    assert!(!trace.is_empty());
    for w in trace.windows(2) {
        assert!(w[1] >= w[0], "trace not monotone: {trace:?}");
    }
    assert_eq!(*trace.last().unwrap(), m.weight());
    assert!(m.weight() <= opt);
}

#[test]
fn perfect_matching_improved_only_by_cycles() {
    // alternating cycles: the matching is perfect, no augmenting paths
    // exist; only the cycle blow-up machinery can improve it
    let (g, m0) = generators::alternating_cycles(3, 2, 4, 5);
    assert_eq!(m0.free_vertices().count(), 0);
    let mut cfg = MainAlgConfig::practical(0.1, 3);
    cfg.q = 32;
    cfg.max_layers = 7;
    cfg.trials = 16;
    cfg.stall_rounds = 4;
    let (m, _) = max_weight_matching_offline_from(&g, m0.clone(), &cfg);
    let opt = max_weight_matching(&g).weight();
    assert_eq!(opt, 3 * 2 * 5);
    assert!(
        m.weight() > m0.weight(),
        "cycle machinery must improve the perfect matching"
    );
    assert_eq!(m.weight(), opt, "all three cycles should flip");
}

#[test]
fn heavier_weight_classes_win_conflicts() {
    // two overlapping candidate augmentations in different classes: the
    // heavier class must be preferred by the cross-class greedy sweep
    let mut g = wmatch_graph::Graph::new(4);
    g.add_edge(0, 1, 1000); // heavy single-edge augmentation
    g.add_edge(1, 2, 8); // light competing edge sharing vertex 1
    g.add_edge(2, 3, 6);
    let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 2));
    assert!(m.contains_pair(0, 1), "heavy edge must be matched: {m}");
    assert_eq!(m.weight(), 1006);
}

#[test]
fn all_families_valid_and_better_than_half() {
    for (name, g) in [
        ("paths3", generators::disjoint_paths3(20)),
        ("barrier", generators::weighted_barrier_paths(15, 100)),
        ("cycles", generators::alternating_cycles(5, 3, 3, 4).0),
    ] {
        let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 11));
        m.validate(Some(&g)).unwrap();
        let r = ratio_to_opt(&g, m.weight());
        assert!(r >= 0.75, "{name}: ratio {r}");
    }
}
