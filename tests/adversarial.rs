//! Adversarial-instance integration tests: orders and weight structures
//! built to break each algorithm's weak spot, checking the guarantees
//! degrade exactly as the theory predicts and no further.

use wmatch_core::greedy::greedy_insertion;
use wmatch_core::local_ratio::LocalRatio;
use wmatch_core::main_alg::{max_weight_matching_offline, MainAlgConfig};
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_graph::exact::max_weight_matching;
use wmatch_graph::generators;
use wmatch_graph::Edge;
use wmatch_stream::VecStream;

/// Middle edges first: pins greedy at exactly 1/2 on the 3-path family.
fn middle_first_order(k: usize) -> (wmatch_graph::Graph, Vec<Edge>) {
    let g = generators::disjoint_paths3(k);
    let mut order = Vec::new();
    for i in 0..k {
        order.push(g.edge(3 * i + 1));
    }
    for i in 0..k {
        order.push(g.edge(3 * i));
        order.push(g.edge(3 * i + 2));
    }
    (g, order)
}

#[test]
fn greedy_is_exactly_half_on_middle_first() {
    let (g, order) = middle_first_order(50);
    let mut s = VecStream::adversarial(order).with_vertex_count(g.vertex_count());
    let m = greedy_insertion(&mut s);
    assert_eq!(m.len(), 50); // OPT = 100
}

#[test]
fn exponential_weights_do_not_break_local_ratio() {
    // exponentially growing path weights stack every edge, but unwinding
    // still recovers at least half (here: exactly the optimum)
    let weights: Vec<u64> = (0..40).map(|i| 1u64 << (i % 50)).collect();
    let g = generators::path_graph(&weights);
    let mut lr = LocalRatio::new(g.vertex_count());
    for e in g.edges() {
        lr.on_edge(*e);
    }
    let m = lr.unwind();
    let opt = max_weight_matching(&g).weight();
    assert!(2 * m.weight() >= opt);
}

#[test]
fn rand_arr_survives_heavy_tail_last() {
    // all heavy edges hidden at the end of the stream: the frozen
    // potentials are tiny, so the T-set catches everything heavy
    let mut edges = Vec::new();
    for i in 0..30u32 {
        edges.push(Edge::new(60 + i, 120 + i, 1)); // junk phase one
    }
    for i in 0..30u32 {
        edges.push(Edge::new(2 * i, 2 * i + 1, 1_000_000));
    }
    let mut s = VecStream::adversarial(edges).with_vertex_count(160);
    let res = rand_arr_matching(
        &mut s,
        &RandArrConfig {
            p: 0.05,
            ..Default::default()
        },
    );
    assert!(res.matching.weight() >= 30 * 1_000_000);
}

#[test]
fn zero_gain_augmentations_never_applied() {
    // a graph where every alternating structure has gain exactly 0:
    // the machinery must terminate without flapping
    let g = generators::cycle_graph(&[5, 5, 5, 5]);
    let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 3));
    assert_eq!(m.weight(), 10);
    m.validate(Some(&g)).unwrap();
}

#[test]
fn parallel_heavy_edges() {
    // parallel edges between the same endpoints with different weights:
    // the machinery must pick the heaviest representative
    let mut g = wmatch_graph::Graph::new(2);
    g.add_edge(0, 1, 3);
    g.add_edge(0, 1, 9);
    g.add_edge(0, 1, 5);
    let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 1));
    assert_eq!(m.weight(), 9);
}

#[test]
fn star_graphs_cannot_be_gamed() {
    // stars admit exactly one matched edge. The final 70 -> 80 swap has
    // relative gain exactly 1/8, which q = 8 correctly filters at the
    // granularity boundary; q = 16 resolves it and must find the heaviest.
    let mut g = wmatch_graph::Graph::new(9);
    for i in 1..9u32 {
        g.add_edge(0, i, i as u64 * 10);
    }
    let coarse = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 4));
    assert!(coarse.weight() >= 70, "coarse config within its slack");
    let mut cfg = MainAlgConfig::practical(0.25, 4);
    cfg.q = 16;
    let m = max_weight_matching_offline(&g, &cfg);
    assert_eq!(m.weight(), 80);
    assert_eq!(m.len(), 1);
}

#[test]
fn isolated_vertices_and_tiny_graphs() {
    for n in 0..4usize {
        let g = wmatch_graph::Graph::new(n);
        let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.5, 0));
        assert!(m.is_empty());
        let mut s = VecStream::adversarial(vec![]).with_vertex_count(n);
        assert!(rand_arr_matching(&mut s, &RandArrConfig::default())
            .matching
            .is_empty());
    }
}

#[test]
fn weight_one_everything() {
    // all-unit weights: the weighted machinery degenerates gracefully to
    // cardinality matching
    let g = generators::disjoint_paths3(10);
    let m = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 6));
    assert_eq!(m.weight(), 20, "must find all 2k outer edges");
}
