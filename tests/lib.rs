//! Shared helpers for the cross-crate integration tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmatch_graph::generators::{self, WeightModel};
use wmatch_graph::Graph;

/// A reproducible random weighted graph for integration tests.
pub fn test_graph(n: usize, avg_degree: f64, max_w: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (avg_degree / n as f64).min(0.9);
    generators::gnp(n, p, WeightModel::Uniform { lo: 1, hi: max_w }, &mut rng)
}

/// A reproducible random bipartite graph plus its side labels.
pub fn test_bipartite(nl: usize, nr: usize, p: f64, max_w: u64, seed: u64) -> (Graph, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_bipartite(
        nl,
        nr,
        p,
        WeightModel::Uniform { lo: 1, hi: max_w },
        &mut rng,
    )
}

/// Ratio of a matching weight to the exact optimum (1.0 for empty optima).
pub fn ratio_to_opt(g: &Graph, w: i128) -> f64 {
    let opt = wmatch_graph::exact::max_weight_matching(g).weight();
    if opt == 0 {
        1.0
    } else {
        w as f64 / opt as f64
    }
}
