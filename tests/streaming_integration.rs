//! Streaming integration: single-pass algorithms (Theorems 1.1 and 3.4)
//! and the multi-pass (1−ε) driver (Theorem 1.2.2), cross-validated
//! against the exact solvers.

use wmatch_core::main_alg::{max_weight_matching_streaming, MainAlgConfig};
use wmatch_core::rand_arr_matching::{rand_arr_matching, RandArrConfig};
use wmatch_core::random_order_unweighted::{random_order_unweighted, RouConfig};
use wmatch_graph::exact::{max_cardinality_matching, max_weight_matching};
use wmatch_graph::generators;
use wmatch_stream::{EdgeStream, McmConfig, VecStream};
use wmatch_tests::test_graph;

#[test]
fn rand_arr_expected_ratio_clears_half_plus_c() {
    // expectation over seeds on the weighted barrier (the family built to
    // pin 1/2-style algorithms): must clear 1/2 clearly
    let g = generators::weighted_barrier_paths(30, 200);
    let opt = max_weight_matching(&g).weight() as f64;
    let mut total = 0.0;
    let seeds = 12;
    for seed in 0..seeds {
        let mut s =
            VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(g.vertex_count());
        let mut cfg = RandArrConfig::default();
        cfg.wap.seed = seed;
        total += rand_arr_matching(&mut s, &cfg).matching.weight() as f64 / opt;
    }
    let avg = total / seeds as f64;
    assert!(avg > 0.54, "expected well above 1/2, got {avg}");
}

#[test]
fn rou_expected_ratio_clears_0_506() {
    let g = generators::disjoint_paths3(100);
    let opt = max_cardinality_matching(&g).len() as f64;
    let mut total = 0.0;
    let seeds = 12;
    for seed in 0..seeds {
        let mut s =
            VecStream::random_order(g.edges().to_vec(), seed).with_vertex_count(g.vertex_count());
        total += random_order_unweighted(&mut s, &RouConfig::default())
            .matching
            .len() as f64
            / opt;
    }
    let avg = total / seeds as f64;
    assert!(avg > 0.506, "Theorem 3.4 shape violated: {avg}");
}

#[test]
fn streaming_driver_pass_counts_flat_in_n() {
    // passes (model) must be governed by the configuration, not n
    let mut passes = Vec::new();
    for (seed, n) in [(1u64, 24usize), (2, 48)] {
        let g = test_graph(n, 6.0, 64, seed);
        let mut cfg = MainAlgConfig::practical(0.25, 3);
        cfg.max_rounds = 5;
        cfg.stall_rounds = 1;
        let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(n);
        let res = max_weight_matching_streaming(&mut s, &cfg, &McmConfig::for_delta(0.25));
        res.matching.validate(None).unwrap();
        passes.push(res.passes_model);
    }
    // the two counts come from identical configs: within a small factor
    let (a, b) = (passes[0] as f64, passes[1] as f64);
    assert!(
        (a / b).max(b / a) < 3.0,
        "model passes should not scale with n: {passes:?}"
    );
}

#[test]
fn streaming_driver_memory_stays_near_linear() {
    let n = 60;
    let g = test_graph(n, 12.0, 64, 9);
    let mut cfg = MainAlgConfig::practical(0.25, 1);
    cfg.max_rounds = 4;
    let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(n);
    let res = max_weight_matching_streaming(&mut s, &cfg, &McmConfig::for_delta(0.25));
    assert!(
        res.peak_memory_edges < g.edge_count(),
        "peak {} must undercut m = {}",
        res.peak_memory_edges,
        g.edge_count()
    );
}

#[test]
fn layered_stream_is_transparent_to_pass_counting() {
    // the layered adapter charges passes to the underlying stream
    let g = test_graph(16, 4.0, 16, 3);
    let mut s = VecStream::adversarial(g.edges().to_vec()).with_vertex_count(16);
    let before = s.passes();
    let mut cfg = MainAlgConfig::practical(0.25, 1);
    cfg.max_rounds = 2;
    cfg.stall_rounds = 1;
    let res = max_weight_matching_streaming(&mut s, &cfg, &McmConfig::for_delta(0.5));
    assert_eq!(s.passes() - before, res.passes_sequential);
}

#[test]
fn single_pass_structures_respect_memory() {
    // Rand-Arr-Matching on a dense random-order stream stores a vanishing
    // fraction (Lemma 3.15 shape)
    let g = test_graph(80, 40.0, 1000, 5);
    let mut s = VecStream::random_order(g.edges().to_vec(), 8).with_vertex_count(80);
    let res = rand_arr_matching(&mut s, &RandArrConfig::default());
    assert!(res.stack_size + res.t_size < g.edge_count() / 2);
}
