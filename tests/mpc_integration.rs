//! MPC integration: the simulator's budgets are respected end-to-end and
//! the (1−ε) MPC driver (Theorem 1.2.1) matches offline quality.

use wmatch_core::main_alg::{max_weight_matching_mpc, MainAlgConfig};
use wmatch_graph::exact::max_bipartite_cardinality_matching;
use wmatch_mpc::{mpc_bipartite_mcm, MpcConfig, MpcError, MpcMcmConfig, MpcSimulator};
use wmatch_tests::{ratio_to_opt, test_bipartite, test_graph};

#[test]
fn mcm_box_quality_across_machine_counts() {
    let (g, side) = test_bipartite(40, 40, 0.1, 1, 3);
    let opt = max_bipartite_cardinality_matching(&g, &side).len();
    for machines in [2usize, 4, 8] {
        let mut sim = MpcSimulator::new(MpcConfig::new(machines, 4000));
        let res = mpc_bipartite_mcm(
            &mut sim,
            g.edges().to_vec(),
            &side,
            &MpcMcmConfig::for_delta(0.1, machines as u64),
        )
        .unwrap();
        assert!(
            res.matching.len() as f64 >= 0.85 * opt as f64,
            "Γ={machines}: {} vs {opt}",
            res.matching.len()
        );
    }
}

#[test]
fn driver_quality_and_budget() {
    let g = test_graph(24, 5.0, 64, 4);
    let s_words = 40 * 24;
    let mut cfg = MainAlgConfig::practical(0.25, 2);
    cfg.max_rounds = 8;
    cfg.trials = 1;
    let res = max_weight_matching_mpc(
        &g,
        &cfg,
        MpcConfig::new(3, s_words),
        &MpcMcmConfig::for_delta(0.25, 7),
    )
    .unwrap();
    res.matching.validate(Some(&g)).unwrap();
    let r = ratio_to_opt(&g, res.matching.weight());
    assert!(r >= 0.7, "MPC driver ratio {r}");
    assert!(res.peak_machine_words <= s_words);
    assert!(res.rounds_model <= res.rounds_sequential);
}

#[test]
fn budget_violations_surface_as_errors() {
    let (g, side) = test_bipartite(30, 30, 0.5, 1, 6);
    let mut sim = MpcSimulator::new(MpcConfig::new(2, 8));
    let err = mpc_bipartite_mcm(
        &mut sim,
        g.edges().to_vec(),
        &side,
        &MpcMcmConfig::for_delta(0.2, 1),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MpcError::MemoryExceeded { .. } | MpcError::CommunicationExceeded { .. }
    ));
}

#[test]
fn rounds_scale_with_iteration_budget_not_size() {
    let mut all_rounds = Vec::new();
    for (seed, n) in [(1u64, 20usize), (2, 40)] {
        let g = test_graph(n, 5.0, 32, seed);
        let mut cfg = MainAlgConfig::practical(0.25, 3);
        cfg.max_rounds = 3;
        cfg.trials = 1;
        cfg.stall_rounds = 1;
        let res = max_weight_matching_mpc(
            &g,
            &cfg,
            MpcConfig::new(3, 60 * n),
            &MpcMcmConfig::for_delta(0.25, 5).with_max_iterations(4),
        )
        .unwrap();
        all_rounds.push(res.rounds_model);
    }
    let (a, b) = (all_rounds[0] as f64, all_rounds[1] as f64);
    assert!(
        (a / b).max(b / a) < 3.0,
        "model rounds should track the budget, not n: {all_rounds:?}"
    );
}
