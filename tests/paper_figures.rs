//! Executable reproductions of the paper's worked figures and inline
//! examples (F1–F4 in DESIGN.md §2).

use wmatch_core::decompose::decompose_walk;
use wmatch_core::layered::{LayeredSpec, Parametrization};
use wmatch_core::main_alg::{max_weight_matching_offline, MainAlgConfig};
use wmatch_core::tau::TauPair;
use wmatch_core::wgt_aug_paths::{WapConfig, WgtAugPaths};
use wmatch_graph::exact::{max_bipartite_cardinality_matching, max_weight_matching};
use wmatch_graph::generators;
use wmatch_graph::{Augmentation, Edge};

#[test]
fn figure1_numbers_match_the_text() {
    let (g, m) = generators::fig1_graph();
    // "The current matching M consists of a single edge {c,d} ... w(M) = 5"
    assert_eq!(m.weight(), 5);
    // "The maximum matching consists of {a,c},{d,f} and has weight 8"
    let opt = max_weight_matching(&g);
    assert_eq!(opt.weight(), 8);
    assert!(opt.contains_pair(0, 2) && opt.contains_pair(3, 5));
    // "an algorithm may find the alternating path P = b,c,d,e which is
    // augmenting in the unweighted sense but w(M∆P) < w(M)"
    let p = [Edge::new(1, 2, 2), Edge::new(2, 3, 5), Edge::new(3, 4, 2)];
    let bad = Augmentation::from_component(&m, &p).unwrap();
    assert!(bad.gain() < 0);
    // with τ_c + τ_d > w({c,d}) any surviving unweighted augmenting path
    // is weight-positive: the machinery recovers the optimum
    let m_final = max_weight_matching_offline(&g, &MainAlgConfig::practical(0.25, 1));
    assert_eq!(m_final.weight(), 8);
}

#[test]
fn figure2_augmentation_types() {
    let (_, m0, dashed) = generators::fig2_graph();
    // type 1: single edge {e,h} with w > w(M0(e)) + w(M0(h))
    let eh = dashed.iter().find(|e| e.key() == (4, 7)).unwrap();
    assert!(eh.weight > m0.incident_weight(4) + m0.incident_weight(7));
    // type 2: the path and the cycle quoted in the text both gain
    let path = [
        Edge::new(1, 0, 10),
        Edge::new(0, 3, 20),
        Edge::new(3, 2, 13),
        Edge::new(2, 5, 10),
        Edge::new(5, 4, 1),
    ];
    assert!(Augmentation::from_component(&m0, &path).unwrap().gain() > 0);
    let cycle = [
        Edge::new(4, 5, 1),
        Edge::new(5, 7, 1),
        Edge::new(7, 6, 0),
        Edge::new(6, 4, 1),
    ];
    assert!(Augmentation::from_component(&m0, &cycle).unwrap().gain() > 0);
    // Wgt-Aug-Paths improves M0 on the figure for any marking seed
    let mut improved = 0;
    for seed in 0..8 {
        let mut wap = WgtAugPaths::new(
            m0.clone(),
            &WapConfig {
                seed,
                ..WapConfig::default()
            },
        );
        for e in &dashed {
            wap.feed(*e);
        }
        if wap.finalize().matching.weight() > m0.weight() {
            improved += 1;
        }
    }
    assert!(
        improved >= 6,
        "only {improved}/8 markings improved figure 2"
    );
}

#[test]
fn section_1_1_2_nonsimple_path_decomposes() {
    // the "incorrect layered graph" walk a-b-c-d-b-a of Section 1.1.2:
    // no positive augmentation exists in its support, and the
    // decomposition must not invent one
    let (g, m) = generators::nonsimple_path_example();
    let walk_vs = [0u32, 1, 2, 3, 1, 0];
    let walk_es = [
        g.edge(0),          // a-b (matched)
        g.edge(1),          // b-c
        g.edge(2),          // c-d (matched)
        Edge::new(3, 1, 2), // d-b — not in the graph; the bold pathology
    ];
    // the pathological walk needs the non-edge {d,b}: with the bipartition
    // trick the layered graph never produces it; assert the real graph's
    // decomposable walk (the full path) recovers the true +1 augmentation
    let _ = (walk_vs, walk_es);
    let full_vs = [0u32, 1, 2, 3, 4, 5];
    let full_es: Vec<Edge> = g.edges().to_vec();
    let comps = decompose_walk(&full_vs, &full_es);
    assert_eq!(comps.len(), 1);
    let aug = Augmentation::from_component(&m, &comps[0]).unwrap();
    assert_eq!(aug.gain(), 1);
}

#[test]
fn figure4_layered_graph_shape() {
    // a 3-layer graph in the spirit of Figure 4: matched copies inside
    // layers, unmatched copies between consecutive layers, all edges
    // R(t) -> L(t+1)
    let g = generators::path_graph(&[9, 10, 9]);
    let m = wmatch_graph::Matching::from_edges(4, [g.edge(1)]).unwrap();
    let param = Parametrization::from_sides(vec![false, true, false, true]);
    let tau = TauPair {
        a: vec![0, 5, 0],
        b: vec![4, 4],
    };
    let spec = LayeredSpec::new(&tau, 16, 8, &param, &m);
    let lg = spec.build(g.edges().iter().copied());
    for (idx, e) in lg.graph.edges().iter().enumerate() {
        let (lu, lv) = (e.u as usize / 4, e.v as usize / 4);
        if lg.ml_prime.contains(e) {
            assert_eq!(lu, lv, "matched copies live inside one layer (edge {idx})");
        } else {
            assert_eq!(
                lu.abs_diff(lv),
                1,
                "unmatched copies cross consecutive layers"
            );
            // direction: R in the lower layer, L in the upper
            let (lower, upper) = if lu < lv { (e.u, e.v) } else { (e.v, e.u) };
            assert!(!param.is_left(lower % 4));
            assert!(param.is_left(upper % 4));
        }
    }
    // and the whole pipeline finds the 3-augmentation of gain 8
    let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
    let walks = lg.augmenting_walks(&m_prime);
    let best: i128 = walks
        .iter()
        .flat_map(|(vs, es)| decompose_walk(vs, es))
        .filter_map(|comp| Augmentation::from_component(&m, &comp).ok())
        .map(|a| a.gain())
        .max()
        .unwrap();
    assert_eq!(best, 8);
}

#[test]
fn cycle_blowup_of_section_1_1_2() {
    // "consider the 4-cycle with more general weights 2, 2+ε, 2, 2+ε":
    // scaled to integers (4, 5, 4, 5); the blow-up finds the +2 cycle
    let (g, m) = generators::four_cycle_eps(4);
    let param = Parametrization::from_sides(vec![true, false, true, false]);
    let tau = TauPair {
        a: vec![4; 6],
        b: vec![5; 5],
    };
    let spec = LayeredSpec::new(&tau, 32, 32, &param, &m);
    let lg = spec.build(g.edges().iter().copied());
    let m_prime = max_bipartite_cardinality_matching(&lg.graph, &lg.side);
    let gains: Vec<i128> = lg
        .augmenting_walks(&m_prime)
        .iter()
        .flat_map(|(vs, es)| decompose_walk(vs, es))
        .filter_map(|comp| Augmentation::from_component(&m, &comp).ok())
        .map(|a| a.gain())
        .collect();
    assert!(
        gains.contains(&2),
        "the augmenting cycle must appear: {gains:?}"
    );
}
